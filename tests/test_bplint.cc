/**
 * @file
 * Fixture suite for the bplint rules: each feeds a known-bad source
 * snippet to lintSource() and asserts the expected rule fires at the
 * expected line — and that clean equivalents and suppression
 * directives do not fire. The snippets live in string literals, which
 * is also a regression test for the linter's own literal stripping
 * (bplint scans this file in the tree-wide lint run and must not
 * flag the rule names quoted here).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint.h"

namespace {

using bplint::Finding;
using bplint::lintProject;
using bplint::LintOptions;
using bplint::lintSource;
using bplint::SourceFile;

/** Findings for `rule` only. */
std::vector<Finding>
byRule(const std::vector<Finding> &all, const std::string &rule)
{
    std::vector<Finding> out;
    for (const Finding &f : all)
        if (f.rule == rule)
            out.push_back(f);
    return out;
}

bool
firesAtLine(const std::vector<Finding> &all, const std::string &rule,
            int line)
{
    return std::any_of(all.begin(), all.end(), [&](const Finding &f) {
        return f.rule == rule && f.line == line;
    });
}

// --------------------------------------------------------------------
// Rule inventory and infrastructure.
// --------------------------------------------------------------------

TEST(BplintMeta, AllTwelveRulesAreRegistered)
{
    const std::vector<std::string> rules = bplint::ruleNames();
    const char *expected[] = {"wall-clock",         "libc-rand",
                              "kernel-stats",       "op-entry-contract",
                              "parallel-capture-race", "hot-loop-alloc",
                              "must-check-io",      "env-registry",
                              "include-hygiene",    "include-dag",
                              "unchecked-io",       "arena-escape"};
    EXPECT_EQ(rules.size(), 12u);
    for (const char *rule : expected) {
        EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
            << "missing rule " << rule;
    }
}

TEST(BplintMeta, StripPreservesLineNumbersAndCode)
{
    const std::string text = "int a; // trailing\n"
                             "/* block\n   spanning */ int b;\n"
                             "const char *s = \"rand();\";\n";
    const std::string stripped = bplint::stripCommentsAndStrings(text);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
              std::count(stripped.begin(), stripped.end(), '\n'));
    EXPECT_NE(stripped.find("int a;"), std::string::npos);
    EXPECT_NE(stripped.find("int b;"), std::string::npos);
    // The literal's contents must be gone: no token scanner may see it.
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_EQ(stripped.find("trailing"), std::string::npos);
    EXPECT_EQ(stripped.find("spanning"), std::string::npos);
}

TEST(BplintMeta, FormattersIncludeRuleAndLocation)
{
    const std::vector<Finding> one = {
        {"src/ops/x.cc", 12, "wall-clock", "boom"}};
    const std::string text = bplint::formatText(one);
    EXPECT_NE(text.find("src/ops/x.cc:12"), std::string::npos);
    EXPECT_NE(text.find("[wall-clock]"), std::string::npos);
    const std::string json = bplint::formatJson(one);
    EXPECT_NE(json.find("\"rule\""), std::string::npos);
    EXPECT_NE(json.find("\"line\": 12"), std::string::npos);
}

// --------------------------------------------------------------------
// wall-clock
// --------------------------------------------------------------------

TEST(BplintWallClock, FiresOnNonMonotonicClocks)
{
    const std::string bad = "#include <chrono>\n"
                            "double now() {\n"
                            "  auto t = std::chrono::system_clock::now();\n"
                            "  return 0;\n"
                            "}\n";
    const auto findings = lintSource("src/perf/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "wall-clock", 3));

    const std::string hires =
        "auto t = std::chrono::high_resolution_clock::now();\n";
    EXPECT_FALSE(byRule(lintSource("src/a.cc", hires), "wall-clock").empty());
}

TEST(BplintWallClock, SteadyClockIsClean)
{
    const std::string good =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", good), "wall-clock").empty());
}

TEST(BplintWallClock, MentionInCommentOrStringIsClean)
{
    const std::string good =
        "// never use system_clock here\n"
        "const char *s = \"system_clock\";\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", good), "wall-clock").empty());
}

// --------------------------------------------------------------------
// libc-rand
// --------------------------------------------------------------------

TEST(BplintLibcRand, FiresOnRandAndSrand)
{
    const std::string bad = "int noise() {\n"
                            "  srand(42);\n"
                            "  return rand();\n"
                            "}\n";
    const auto findings = lintSource("src/util/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "libc-rand", 2));
    EXPECT_TRUE(firesAtLine(findings, "libc-rand", 3));
}

TEST(BplintLibcRand, MemberAndNamedFunctionsAreClean)
{
    const std::string good = "float draw(Rng &rng) {\n"
                             "  auto x = rng.rand();\n"
                             "  auto y = gen->rand();\n"
                             "  return quasirand();\n"
                             "}\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", good), "libc-rand").empty());
}

// --------------------------------------------------------------------
// kernel-stats
// --------------------------------------------------------------------

TEST(BplintKernelStats, FiresOnVoidTensorKernelInOps)
{
    const std::string bad =
        "#include \"tensor/tensor.h\"\n"
        "namespace bertprof {\n"
        "void scaleInPlace(Tensor &t, float s) {\n"
        "  BP_REQUIRE(s != 0.0f);\n"
        "}\n"
        "} // namespace bertprof\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "kernel-stats", 3));
}

TEST(BplintKernelStats, ScopedToOpsOnly)
{
    const std::string text = "namespace bertprof {\n"
                             "void helper(Tensor &t) { BP_REQUIRE(true); }\n"
                             "}\n";
    EXPECT_FALSE(
        byRule(lintSource("src/ops/x.cc", text), "kernel-stats").empty());
    EXPECT_TRUE(
        byRule(lintSource("src/nn/x.cc", text), "kernel-stats").empty());
}

TEST(BplintKernelStats, StatsBearingReturnsAreClean)
{
    const std::string good =
        "namespace bertprof {\n"
        "KernelStats addForward(const Tensor &a, Tensor &out) {\n"
        "  BP_CHECK_SAME_SHAPE(a, out);\n"
        "  return KernelStats{};\n"
        "}\n"
        "CrossEntropyResult loss(const Tensor &l, Tensor &d) {\n"
        "  BP_CHECK_SAME_SHAPE(l, d);\n"
        "  return {};\n"
        "}\n"
        "static void localHelper(Tensor &t) {}\n"
        "namespace { void anonHelper(Tensor &t) {} }\n"
        "}\n";
    EXPECT_TRUE(
        byRule(lintSource("src/ops/good.cc", good), "kernel-stats").empty());
}

// --------------------------------------------------------------------
// op-entry-contract
// --------------------------------------------------------------------

TEST(BplintOpEntryContract, FiresWhenNoPreconditionIsStated)
{
    const std::string bad =
        "namespace bertprof {\n"
        "KernelStats mulForward(const Tensor &a, Tensor &out) {\n"
        "  out = a;\n"
        "  return KernelStats{};\n"
        "}\n"
        "}\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "op-entry-contract", 2));
}

TEST(BplintOpEntryContract, AnyContractMacroSatisfiesIt)
{
    const std::string good =
        "namespace bertprof {\n"
        "KernelStats f(const Tensor &a, Tensor &out) {\n"
        "  BP_CHECK_NO_ALIAS(out, a);\n"
        "  return KernelStats{};\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/ops/good.cc", good),
                       "op-entry-contract")
                    .empty());
}

// --------------------------------------------------------------------
// parallel-capture-race
// --------------------------------------------------------------------

TEST(BplintCaptureRace, FiresOnCapturedCompoundAssign)
{
    const std::string bad =
        "void f(ThreadPool &pool) {\n"
        "  double total = 0.0;\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    total += work(b, e);\n"
        "  });\n"
        "}\n";
    const auto findings = lintSource("src/runtime/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "parallel-capture-race", 4));
}

TEST(BplintCaptureRace, LocalAndSubscriptedWritesAreClean)
{
    const std::string good =
        "void f(ThreadPool &pool) {\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    double local = 0.0;\n"
        "    for (std::int64_t i = b; i < e; ++i) local += x[i];\n"
        "    partial[b] += local;\n"
        "    out[i] *= 2.0f;\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-capture-race")
                    .empty());
}

TEST(BplintCaptureRace, OutsideParallelForIsClean)
{
    const std::string good = "void f() {\n"
                             "  double total = 0.0;\n"
                             "  total += 1.0;\n"
                             "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-capture-race")
                    .empty());
}

TEST(BplintCaptureRace, FiresOnIncrementAndPlainAssign)
{
    const std::string bad =
        "void f() {\n"
        "  int hits = 0;\n"
        "  long last = 0;\n"
        "  parallelFor(0, n, 8, [&](std::int64_t b, std::int64_t e) {\n"
        "    ++hits;\n"
        "    last = e;\n"
        "  });\n"
        "}\n";
    const auto findings = lintSource("src/runtime/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "parallel-capture-race", 5));
    EXPECT_TRUE(firesAtLine(findings, "parallel-capture-race", 6));
}

TEST(BplintCaptureRace, FiresOnMutatingMemberCall)
{
    const std::string bad =
        "void f() {\n"
        "  std::vector<double> rows;\n"
        "  parallelFor(0, n, 8, [&](std::int64_t b, std::int64_t e) {\n"
        "    rows.push_back(static_cast<double>(b));\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(firesAtLine(lintSource("src/runtime/bad.cc", bad),
                            "parallel-capture-race", 4));
}

TEST(BplintCaptureRace, FiresOnPassByNonConstReference)
{
    const std::string bad =
        "namespace bertprof {\n"
        "void bump(double &x);\n"
        "void f() {\n"
        "  double total = 0.0;\n"
        "  parallelFor(0, n, 8, [&](std::int64_t b, std::int64_t e) {\n"
        "    bump(total);\n"
        "  });\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(firesAtLine(lintSource("src/runtime/bad.cc", bad),
                            "parallel-capture-race", 6));
    // const& and by-value parameters are reads, not writes.
    const std::string good =
        "namespace bertprof {\n"
        "void observe(const double &x);\n"
        "void f() {\n"
        "  double total = 0.0;\n"
        "  parallelFor(0, n, 8, [&](std::int64_t b, std::int64_t e) {\n"
        "    observe(total);\n"
        "  });\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-capture-race")
                    .empty());
}

TEST(BplintCaptureRace, AtomicsAndDeclarationsAreClean)
{
    const std::string good =
        "void f() {\n"
        "  std::atomic<int> done{0};\n"
        "  parallelFor(0, n, 8, [&](std::int64_t b, std::int64_t e) {\n"
        "    const std::thread::id me = std::this_thread::get_id();\n"
        "    done.fetch_add(1);\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-capture-race")
                    .empty());
}

TEST(BplintCaptureRace, ValueCapturesAreNotShared)
{
    // [total] copies; writes to the copy are local to each task
    // (require `mutable`, but either way they do not race).
    const std::string good =
        "void f() {\n"
        "  double total = 0.0;\n"
        "  parallelFor(0, n, 8,\n"
        "              [total](std::int64_t b, std::int64_t e) mutable {\n"
        "    total += 1.0;\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/runtime/good.cc", good),
                       "parallel-capture-race")
                    .empty());
}

// --------------------------------------------------------------------
// include-hygiene
// --------------------------------------------------------------------

TEST(BplintIncludeHygiene, FiresOnUpwardInclude)
{
    const std::string bad = "#include \"nn/module.h\"\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 1));
}

TEST(BplintIncludeHygiene, DownwardAndExemptIncludesAreClean)
{
    const std::string good = "#include \"ops/kernel_stats.h\"\n"
                             "#include \"tensor/tensor.h\"\n"
                             "#include \"util/logging.h\"\n"
                             "#include <vector>\n";
    EXPECT_TRUE(byRule(lintSource("src/trace/good.cc", good),
                       "include-hygiene")
                    .empty());
    // Only core may include core.
    const std::string core = "#include \"core/substrate.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/nn/x.cc", core),
                        "include-hygiene")
                     .empty());
    EXPECT_TRUE(byRule(lintSource("src/core/x.cc", core),
                       "include-hygiene")
                    .empty());
}

TEST(BplintIncludeHygiene, OnlyAppliesUnderSrc)
{
    const std::string text = "#include \"nn/module.h\"\n";
    EXPECT_TRUE(byRule(lintSource("bench/bench_model.cc", text),
                       "include-hygiene")
                    .empty());
}

TEST(BplintIncludeHygiene, ServeMayUseModelAndRuntimeLayers)
{
    const std::string good = "#include \"serve/batcher.h\"\n"
                             "#include \"nn/bert_classifier.h\"\n"
                             "#include \"ops/dropout.h\"\n"
                             "#include \"runtime/config.h\"\n"
                             "#include \"util/stopwatch.h\"\n";
    EXPECT_TRUE(byRule(lintSource("src/serve/good.cc", good),
                       "include-hygiene")
                    .empty());
    // serve sits beside core, not under it.
    const std::string core = "#include \"core/bertprof.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/serve/bad.cc", core),
                        "include-hygiene")
                     .empty());
}

TEST(BplintIncludeHygiene, NothingUnderSrcMayDependOnServe)
{
    // Only bench/tests (outside src/) may pull the serving runtime
    // in; the model layers and core must stay serving-free.
    const std::string text = "#include \"serve/server.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/core/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_FALSE(byRule(lintSource("src/nn/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_TRUE(byRule(lintSource("bench/bench_serving.cc", text),
                       "include-hygiene")
                    .empty());
}

TEST(BplintIncludeHygiene, GraphMayUseNnButNnMayNotUseGraph)
{
    const auto up = lintSource("src/nn/encoder_layer.cc",
                               "#include \"graph/encoder_exec.h\"\n");
    EXPECT_TRUE(firesAtLine(up, "include-hygiene", 1));

    const auto down = lintSource("src/graph/encoder_exec.cc",
                                 "#include \"nn/encoder_layer.h\"\n"
                                 "#include \"ops/fused.h\"\n"
                                 "#include \"runtime/profiler.h\"\n");
    EXPECT_TRUE(byRule(down, "include-hygiene").empty());

    // serve may reach the executor to install it.
    const auto serve = lintSource("src/serve/engine.cc",
                                  "#include \"graph/encoder_exec.h\"\n");
    EXPECT_TRUE(byRule(serve, "include-hygiene").empty());
}

// --------------------------------------------------------------------
// arena-escape: Tensor::borrow is confined to the graph executor.
// --------------------------------------------------------------------

TEST(BplintArenaEscape, FiresOnBorrowOutsideGraph)
{
    const char *src =
        "void f(float *p) {\n"
        "    Tensor t = Tensor::borrow(p, Shape({4}));\n"
        "}\n";
    const auto in_nn = lintSource("src/nn/attention.cc", src);
    EXPECT_TRUE(firesAtLine(in_nn, "arena-escape", 2));
    const auto in_ops = lintSource("src/ops/fused.cc", src);
    EXPECT_TRUE(firesAtLine(in_ops, "arena-escape", 2));
}

TEST(BplintArenaEscape, GraphTensorAndNonSrcAreExempt)
{
    const char *src = "Tensor t = Tensor::borrow(p, Shape({4}));\n";
    EXPECT_TRUE(
        byRule(lintSource("src/graph/encoder_exec.cc", src),
               "arena-escape")
            .empty());
    EXPECT_TRUE(
        byRule(lintSource("src/tensor/tensor.cc", src), "arena-escape")
            .empty());
    EXPECT_TRUE(
        byRule(lintSource("tests/test_graph.cc", src), "arena-escape")
            .empty());
}

TEST(BplintArenaEscape, MentionInCommentIsClean)
{
    const auto res = lintSource(
        "src/nn/module.cc",
        "// views come from Tensor::borrow in the executor\n");
    EXPECT_TRUE(byRule(res, "arena-escape").empty());
}

TEST(BplintIncludeHygiene, TelemetryMayUseIoAndRuntimeLayers)
{
    const std::string good = "#include \"telemetry/trace_writer.h\"\n"
                             "#include \"io/append_file.h\"\n"
                             "#include \"runtime/profiler.h\"\n"
                             "#include \"trace/taxonomy.h\"\n"
                             "#include \"util/logging.h\"\n";
    EXPECT_TRUE(byRule(lintSource("src/telemetry/good.cc", good),
                       "include-hygiene")
                    .empty());
    // Telemetry records the substrate; it must not depend on it.
    const std::string bad = "#include \"nn/module.h\"\n"
                            "#include \"ops/gemm.h\"\n";
    const auto findings = lintSource("src/telemetry/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 1));
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 2));
}

TEST(BplintIncludeHygiene, ComputeLayersMayNotDependOnTelemetry)
{
    // Kernel events reach the recorder through the runtime
    // profiler's sink, never by the compute layers including
    // telemetry directly.
    const std::string text = "#include \"telemetry/recorder.h\"\n";
    EXPECT_FALSE(byRule(lintSource("src/ops/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_FALSE(byRule(lintSource("src/nn/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_FALSE(byRule(lintSource("src/runtime/bad.cc", text),
                        "include-hygiene")
                     .empty());
    EXPECT_TRUE(byRule(lintSource("src/train/trainer.cc", text),
                       "include-hygiene")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("src/serve/server.cc", text),
                       "include-hygiene")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("src/core/report.cc", text),
                       "include-hygiene")
                    .empty());
}

// --------------------------------------------------------------------
// unchecked-io
// --------------------------------------------------------------------

TEST(BplintUncheckedIo, FiresOnRawPrimitivesOutsideIoLayer)
{
    const std::string bad = "void f() {\n"
                            "  FILE *fp = fopen(p, \"wb\");\n"
                            "  fwrite(buf, 1, n, fp);\n"
                            "  fread(buf, 1, n, fp);\n"
                            "  std::ofstream out(p);\n"
                            "  std::fstream both(p);\n"
                            "}\n";
    const auto findings = lintSource("src/core/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 2));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 3));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 4));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 5));
    EXPECT_TRUE(firesAtLine(findings, "unchecked-io", 6));
}

TEST(BplintUncheckedIo, IoLayerAndNonSrcTreesAreExempt)
{
    const std::string text = "void f() { fwrite(buf, 1, n, fp); }\n";
    EXPECT_TRUE(byRule(lintSource("src/io/binary_io.cc", text),
                       "unchecked-io")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("tests/test_x.cc", text),
                       "unchecked-io")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("tools/bplint/main.cc", text),
                       "unchecked-io")
                    .empty());
}

TEST(BplintUncheckedIo, CheckedWrappersAndMentionsInCommentsAreClean)
{
    const std::string good =
        "#include \"io/binary_io.h\"\n"
        "// fwrite would be flagged here if not in a comment\n"
        "IoStatus f() { return writeTextFile(p, body); }\n"
        "const char *doc = \"uses fopen internally\";\n";
    EXPECT_TRUE(byRule(lintSource("src/core/good.cc", good),
                       "unchecked-io")
                    .empty());
}

TEST(BplintUncheckedIo, AllowFileSuppressionWorks)
{
    const std::string text = "// bplint: allow-file(unchecked-io)\n"
                             "void f() { std::ofstream out(p); }\n";
    EXPECT_TRUE(byRule(lintSource("src/util/x.cc", text),
                       "unchecked-io")
                    .empty());
}

// --------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------

TEST(BplintSuppression, SameLineAllowSilencesOneRule)
{
    // A directive covers its own line and the one after it, so the
    // unsuppressed violation sits two lines below.
    const std::string text =
        "auto t = std::chrono::system_clock::now();"
        " // bplint: allow(wall-clock)\n"
        "\n"
        "auto u = std::chrono::system_clock::now();\n";
    const auto findings = byRule(lintSource("src/a.cc", text), "wall-clock");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 3);
}

TEST(BplintSuppression, PrecedingLineAllowWorks)
{
    const std::string text = "// bplint: allow(libc-rand)\n"
                             "int x = rand();\n";
    EXPECT_TRUE(byRule(lintSource("src/a.cc", text), "libc-rand").empty());
}

TEST(BplintSuppression, AllowFileSilencesWholeFileForThatRuleOnly)
{
    const std::string text = "// bplint: allow-file(wall-clock)\n"
                             "auto t = std::chrono::system_clock::now();\n"
                             "auto u = std::chrono::system_clock::now();\n"
                             "int y = rand();\n";
    const auto findings = lintSource("src/a.cc", text);
    EXPECT_TRUE(byRule(findings, "wall-clock").empty());
    EXPECT_TRUE(firesAtLine(findings, "libc-rand", 4));
}

TEST(BplintSuppression, AllowForWrongRuleDoesNotSilence)
{
    const std::string text =
        "int x = rand(); // bplint: allow(wall-clock)\n";
    EXPECT_FALSE(byRule(lintSource("src/a.cc", text), "libc-rand").empty());
}

// --------------------------------------------------------------------
// hot-loop-alloc
// --------------------------------------------------------------------

TEST(BplintHotLoopAlloc, FiresOnAllocationsInParallelBody)
{
    const std::string bad =
        "void f(ThreadPool &pool) {\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    Tensor scratch(Shape({e - b}));\n"
        "    auto owned = std::make_unique<float[]>(e - b);\n"
        "    float *raw = new float[e - b];\n"
        "    void *c = malloc(static_cast<std::size_t>(e - b));\n"
        "  });\n"
        "}\n";
    const auto findings = lintSource("src/ops/bad.cc", bad);
    EXPECT_TRUE(firesAtLine(findings, "hot-loop-alloc", 3));
    EXPECT_TRUE(firesAtLine(findings, "hot-loop-alloc", 4));
    EXPECT_TRUE(firesAtLine(findings, "hot-loop-alloc", 5));
    EXPECT_TRUE(firesAtLine(findings, "hot-loop-alloc", 6));
}

TEST(BplintHotLoopAlloc, FiresInsideScopedKernelRegionOnly)
{
    const std::string text =
        "KernelStats f(Profiler &prof) {\n"
        "  Tensor before(Shape({4}));\n"
        "  {\n"
        "    ScopedKernel k(prof, \"gemm\");\n"
        "    Tensor inside(Shape({4}));\n"
        "  }\n"
        "  return KernelStats{};\n"
        "}\n";
    const auto findings = lintSource("src/ops/gemm.cc", text);
    EXPECT_TRUE(firesAtLine(findings, "hot-loop-alloc", 5));
    EXPECT_FALSE(firesAtLine(findings, "hot-loop-alloc", 2));
}

TEST(BplintHotLoopAlloc, ReferencesPointersAndStaticsAreClean)
{
    const std::string good =
        "void f(ThreadPool &pool) {\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    Tensor &view = views[b];\n"
        "    const Tensor *ptr = &views[b];\n"
        "    Tensor::scaleInPlace(view, 2.0f);\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("src/ops/good.cc", good),
                       "hot-loop-alloc")
                    .empty());
}

TEST(BplintHotLoopAlloc, NonSrcTreesAreExempt)
{
    const std::string text =
        "void f(ThreadPool &pool) {\n"
        "  parallelFor(pool, 0, n, [&](std::int64_t b, std::int64_t e) {\n"
        "    Tensor scratch(Shape({e - b}));\n"
        "  });\n"
        "}\n";
    EXPECT_TRUE(byRule(lintSource("bench/bench_x.cc", text),
                       "hot-loop-alloc")
                    .empty());
    EXPECT_TRUE(byRule(lintSource("tests/test_x.cc", text),
                       "hot-loop-alloc")
                    .empty());
}

// --------------------------------------------------------------------
// must-check-io (cross-TU: receivers resolve against other files'
// class declarations, so the fixtures run through lintProject).
// --------------------------------------------------------------------

const char *kIoHeader =
    "namespace bertprof {\n"
    "class IoStatus {\n"
    "  public:\n"
    "    bool ok() const;\n"
    "};\n"
    "IoStatus writeTextFile(const std::string &path,\n"
    "                       const std::string &content);\n"
    "class AppendFile {\n"
    "  public:\n"
    "    IoStatus open(const std::string &path);\n"
    "    IoStatus sync();\n"
    "    IoStatus close();\n"
    "};\n"
    "class Batcher {\n"
    "  public:\n"
    "    void close();\n"
    "};\n"
    "}\n";

TEST(BplintMustCheckIo, FiresOnDiscardedAndVoidCastResults)
{
    const std::string bad =
        "#include \"io/io.h\"\n"
        "namespace bertprof {\n"
        "void f(const std::string &p) {\n"
        "  writeTextFile(p, p);\n"
        "  (void)writeTextFile(p, p);\n"
        "}\n"
        "}\n";
    const auto findings = lintProject(
        {{"src/io/io.h", kIoHeader}, {"src/core/bad.cc", bad}},
        LintOptions{});
    EXPECT_TRUE(firesAtLine(findings, "must-check-io", 4));
    EXPECT_TRUE(firesAtLine(findings, "must-check-io", 5));
}

TEST(BplintMustCheckIo, BoundButNeverReadFires)
{
    const std::string bad =
        "#include \"io/io.h\"\n"
        "namespace bertprof {\n"
        "void f(const std::string &p) {\n"
        "  IoStatus dropped = writeTextFile(p, p);\n"
        "  doOtherWork();\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(firesAtLine(
        lintProject({{"src/io/io.h", kIoHeader}, {"src/core/bad.cc", bad}},
                    LintOptions{}),
        "must-check-io", 4));
}

TEST(BplintMustCheckIo, ReturnedBoundAndReadOrChainedAreClean)
{
    const std::string good =
        "#include \"io/io.h\"\n"
        "namespace bertprof {\n"
        "IoStatus g(const std::string &p) {\n"
        "  return writeTextFile(p, p);\n"
        "}\n"
        "void h(const std::string &p) {\n"
        "  IoStatus s = writeTextFile(p, p);\n"
        "  if (!s.ok()) {\n"
        "    logFailure();\n"
        "  }\n"
        "}\n"
        "void i(const std::string &p) {\n"
        "  if (!writeTextFile(p, p).ok()) {\n"
        "    logFailure();\n"
        "  }\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(byRule(lintProject({{"src/io/io.h", kIoHeader},
                                    {"src/core/good.cc", good}},
                                   LintOptions{}),
                       "must-check-io")
                    .empty());
}

TEST(BplintMustCheckIo, ResolvesReceiversAcrossTranslationUnits)
{
    // `file.sync()` resolves through the parameter type against the
    // AppendFile declaration in the other file; Batcher::close()
    // returns void and must stay clean.
    const std::string bad =
        "#include \"io/io.h\"\n"
        "namespace bertprof {\n"
        "void flushAll(AppendFile &file, Batcher &batcher) {\n"
        "  file.sync();\n"
        "  batcher.close();\n"
        "}\n"
        "}\n";
    const auto findings = lintProject(
        {{"src/io/io.h", kIoHeader}, {"src/telemetry/bad.cc", bad}},
        LintOptions{});
    EXPECT_TRUE(firesAtLine(findings, "must-check-io", 4));
    EXPECT_FALSE(firesAtLine(findings, "must-check-io", 5));
}

TEST(BplintMustCheckIo, ResolvesMemberVariableReceivers)
{
    const std::string header =
        "#include \"io/io.h\"\n"
        "namespace bertprof {\n"
        "class Writer {\n"
        "  public:\n"
        "    IoStatus flush();\n"
        "  private:\n"
        "    AppendFile file_;\n"
        "};\n"
        "}\n";
    const std::string impl =
        "#include \"telemetry/writer.h\"\n"
        "namespace bertprof {\n"
        "IoStatus\n"
        "Writer::flush()\n"
        "{\n"
        "    file_.close();\n"
        "    return IoStatus();\n"
        "}\n"
        "}\n";
    EXPECT_TRUE(firesAtLine(
        lintProject({{"src/io/io.h", kIoHeader},
                     {"src/telemetry/writer.h", header},
                     {"src/telemetry/writer.cc", impl}},
                    LintOptions{}),
        "must-check-io", 6));
}

TEST(BplintMustCheckIo, NonSrcTreesAreExempt)
{
    const std::string text = "#include \"io/io.h\"\n"
                             "namespace bertprof {\n"
                             "void f(const std::string &p) {\n"
                             "  writeTextFile(p, p);\n"
                             "}\n"
                             "}\n";
    EXPECT_TRUE(byRule(lintProject({{"src/io/io.h", kIoHeader},
                                    {"tests/test_x.cc", text}},
                                   LintOptions{}),
                       "must-check-io")
                    .empty());
}

// --------------------------------------------------------------------
// env-registry
// --------------------------------------------------------------------

const char *kEnvDoc =
    "# Environment knobs\n"
    "\n"
    "| Knob | Range | Default | Effect |\n"
    "| --- | --- | --- | --- |\n"
    "| `BERTPROF_NUM_THREADS` | 1..256 | hw | worker count |\n"
    "| `BERTPROF_STALE_KNOB` | 0/1 | 0 | documented, never read |\n"
    "| prose cell | see BERTPROF_IN_PROSE | - | not a knob row |\n";

TEST(BplintEnvRegistry, FlagsUndocumentedReadsAndStaleDocRows)
{
    const std::string code =
        "#include \"runtime/env.h\"\n"
        "namespace bertprof {\n"
        "int f() {\n"
        "  bool warned = false;\n"
        "  return envInt(\"BERTPROF_NUM_THREADS\", 1, 256, 8, &warned) +\n"
        "         envInt(\"BERTPROF_SECRET\", 0, 1, 0, &warned);\n"
        "}\n"
        "}\n";
    LintOptions opts;
    opts.envDocPath = "README.md";
    opts.envDocText = kEnvDoc;
    const auto findings =
        lintProject({{"src/runtime/cfg.cc", code}}, opts);
    // Read side: the undocumented knob fires at its read site.
    EXPECT_TRUE(firesAtLine(findings, "env-registry", 6));
    // Doc side: the stale row fires at its table line in the doc.
    bool staleRow = false;
    for (const auto &f : byRule(findings, "env-registry")) {
        if (f.file == "README.md" && f.line == 6 &&
            f.message.find("BERTPROF_STALE_KNOB") != std::string::npos)
            staleRow = true;
        // Knob names outside the first table cell are not knob rows.
        EXPECT_EQ(f.message.find("BERTPROF_IN_PROSE"), std::string::npos);
        EXPECT_EQ(f.message.find("BERTPROF_NUM_THREADS"),
                  std::string::npos);
    }
    EXPECT_TRUE(staleRow);
}

TEST(BplintEnvRegistry, DisabledWithoutEnvDoc)
{
    const std::string code =
        "int f() { return envInt(\"BERTPROF_SECRET\", 0, 1, 0, nullptr); }\n";
    EXPECT_TRUE(byRule(lintProject({{"src/runtime/cfg.cc", code}},
                                   LintOptions{}),
                       "env-registry")
                    .empty());
}

TEST(BplintEnvRegistry, ReadsOutsideSrcAreNotRegistered)
{
    const std::string code =
        "int f() { return envInt(\"BERTPROF_TOOL_ONLY\", 0, 1, 0, "
        "nullptr); }\n";
    LintOptions opts;
    opts.envDocPath = "README.md";
    opts.envDocText = kEnvDoc;
    const auto findings = lintProject({{"tools/x/main.cc", code}}, opts);
    for (const auto &f : byRule(findings, "env-registry"))
        EXPECT_EQ(f.message.find("BERTPROF_TOOL_ONLY"), std::string::npos);
}

// --------------------------------------------------------------------
// include-dag
// --------------------------------------------------------------------

TEST(BplintIncludeDag, FiresOnTransitiveViolationThroughMidLayerHeader)
{
    // ops -> ops/helper.h -> telemetry is invisible to the direct
    // include-hygiene rule in bad.cc but caught transitively; the
    // offending header itself gets the direct hygiene finding.
    const auto findings = lintProject(
        {{"src/ops/helper.h", "#include \"telemetry/recorder.h\"\n"},
         {"src/ops/bad.cc", "#include \"ops/helper.h\"\n"}},
        LintOptions{});
    bool transitive = false;
    for (const auto &f : byRule(findings, "include-dag")) {
        if (f.file == "src/ops/bad.cc" && f.line == 1 &&
            f.message.find("telemetry") != std::string::npos)
            transitive = true;
    }
    EXPECT_TRUE(transitive);
    EXPECT_TRUE(firesAtLine(findings, "include-hygiene", 1));
}

TEST(BplintIncludeDag, AllowedTransitiveReachIsClean)
{
    // graph may include nn, and nn may include io: the closure makes
    // graph -> nn -> io legal even though graph never lists io in its
    // direct layer set.
    const auto findings = lintProject(
        {{"src/nn/module.h", "#include \"io/binary_io.h\"\n"},
         {"src/graph/exec.cc", "#include \"nn/module.h\"\n"}},
        LintOptions{});
    EXPECT_TRUE(byRule(findings, "include-dag").empty());
    EXPECT_TRUE(byRule(findings, "include-hygiene").empty());
}

TEST(BplintIncludeDag, DetectsIncludeCycles)
{
    const auto findings = lintProject(
        {{"src/util/a.h", "#include \"util/b.h\"\n"},
         {"src/util/b.h", "#include \"util/a.h\"\n"}},
        LintOptions{});
    bool cycle = false;
    for (const auto &f : byRule(findings, "include-dag")) {
        if (f.message.find("include cycle") != std::string::npos)
            cycle = true;
    }
    EXPECT_TRUE(cycle);
}

// --------------------------------------------------------------------
// SARIF and baseline output
// --------------------------------------------------------------------

TEST(BplintOutput, SarifContainsVersionRuleAndLocation)
{
    const auto findings = lintSource("src/a.cc", "int x = rand();\n");
    ASSERT_FALSE(findings.empty());
    const std::string sarif = bplint::formatSarif(findings);
    EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("libc-rand"), std::string::npos);
    EXPECT_NE(sarif.find("src/a.cc"), std::string::npos);
    EXPECT_NE(sarif.find("startLine"), std::string::npos);
}

TEST(BplintOutput, BaselineRoundTripExcusesExistingFindings)
{
    const auto findings =
        lintSource("src/a.cc", "int x = rand();\nint y = rand();\n");
    ASSERT_EQ(byRule(findings, "libc-rand").size(), 2u);
    const std::string base = bplint::formatBaseline(findings);
    EXPECT_TRUE(bplint::applyBaseline(findings, base).empty());
    // Multiset semantics: one baseline line excuses exactly one
    // matching finding, even when the keys are identical.
    const std::string one = bplint::baselineKey(findings[0]) + "\n";
    EXPECT_EQ(bplint::applyBaseline(findings, one).size(),
              findings.size() - 1);
    // An empty baseline excuses nothing.
    EXPECT_EQ(bplint::applyBaseline(findings, "").size(), findings.size());
}

// --------------------------------------------------------------------
// ProjectModel over the real repository tree
// --------------------------------------------------------------------

#ifdef BERTPROF_SOURCE_DIR

std::vector<SourceFile>
readRealSrcTree()
{
    namespace fs = std::filesystem;
    const fs::path root(BERTPROF_SOURCE_DIR);
    std::vector<SourceFile> files;
    for (const auto &entry :
         fs::recursive_directory_iterator(root / "src")) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cc")
            continue;
        std::ifstream in(entry.path());
        std::ostringstream buf;
        buf << in.rdbuf();
        files.push_back({fs::relative(entry.path(), root).generic_string(),
                         buf.str()});
    }
    std::sort(files.begin(), files.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.path < b.path;
              });
    return files;
}

TEST(BplintProjectModel, RealRepoIncludeGraphIsAcyclicAndLayerOrdered)
{
    const auto files = readRealSrcTree();
    ASSERT_GT(files.size(), 50u);

    const bplint::ProjectModel pm = bplint::buildProjectModel(files);
    EXPECT_TRUE(pm.findIncludeCycles().empty());
    // Cross-TU facts resolve against the real io layer.
    ASSERT_NE(pm.method("AppendFile", "sync"), nullptr);
    EXPECT_TRUE(pm.method("AppendFile", "sync")->returnsIoStatus);

    // Layering holds everywhere except the deliberately seeded (and
    // suppressed) canary files, so the filtered findings are empty.
    const auto findings = lintProject(files, LintOptions{});
    for (const auto &f : findings) {
        if (f.rule == "include-dag" || f.rule == "include-hygiene")
            ADD_FAILURE()
                << f.file << ":" << f.line << " " << f.message;
    }
}

#endif // BERTPROF_SOURCE_DIR

} // namespace
