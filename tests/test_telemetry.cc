/**
 * @file
 * Trace container + recorder tests: encoding pinning, compression
 * round-trips, container write/read round-trips, forward vs backward
 * iteration, typed rejection of corrupt/foreign/old files, torn-write
 * and preemption (kill@io.write) recovery, multi-threaded recording,
 * and the headline equivalence — a recorded run replays to the exact
 * live Profiler aggregates and byte-identical Chrome JSON.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bertprof.h"

namespace bertprof {
namespace {

namespace fs = std::filesystem;

/** RAII: disarm the process-wide fault injector on scope exit. */
struct InjectorGuard {
    ~InjectorGuard() { FaultInjector::instance().reset(); }
};

/** RAII: stop the process-wide recorder on scope exit. */
struct RecorderGuard {
    ~RecorderGuard() { (void)TraceRecorder::instance().stop(); }
};

std::string
tempPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + "bp_" + name;
    fs::remove(path);
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TraceEvent
makeEvent(TraceEventType type, std::int64_t tsNs, std::uint32_t nameId,
          std::int64_t v0 = 0, std::int64_t v1 = 0, std::int64_t v2 = 0,
          std::int64_t v3 = 0)
{
    TraceEvent e;
    e.type = type;
    e.tsNs = tsNs;
    e.nameId = nameId;
    e.a = static_cast<std::uint8_t>(nameId + 1);
    e.b = 2;
    e.c = 3;
    e.d = 4;
    e.v0 = v0;
    e.v1 = v1;
    e.v2 = v2;
    e.v3 = v3;
    return e;
}

/** All events of a container in forward order. */
std::vector<TraceEvent>
collectForward(const TraceReader &reader)
{
    std::vector<TraceEvent> out;
    TraceForwardIter it(reader);
    TraceEvent e;
    while (it.next(e))
        out.push_back(e);
    return out;
}

// --------------------------------------------------------------------
// Event encoding
// --------------------------------------------------------------------

TEST(TraceFormat, EventEncodingIsPinned)
{
    TraceEvent e;
    e.type = TraceEventType::Kernel;
    e.tid = 2;
    e.tsNs = 1000; // prev 900 -> delta 100 -> zigzag 200
    e.nameId = 3;
    e.a = 1;
    e.b = 2;
    e.c = 3;
    e.d = 4;
    e.v0 = -1;  // zigzag 1
    e.v1 = 1;   // zigzag 2
    e.v2 = 300; // zigzag 600
    e.v3 = 0;

    std::string out;
    encodeTraceEvent(out, e, 900);
    const unsigned char want[] = {1, 2, 0xC8, 0x01, 3, 1, 2,
                                  3, 4, 1,    2,    0xD8, 0x04, 0};
    ASSERT_EQ(out.size(), sizeof want);
    EXPECT_EQ(std::memcmp(out.data(), want, sizeof want), 0);

    // And it decodes back, carrying the running timestamp.
    std::size_t pos = 0;
    std::int64_t prev = 900;
    TraceEvent back;
    ASSERT_TRUE(
        decodeTraceEvent(out.data(), out.size(), pos, prev, back));
    EXPECT_EQ(pos, out.size());
    EXPECT_EQ(prev, 1000);
    EXPECT_TRUE(back == e);
}

TEST(TraceFormat, DecodeRejectsTruncationAtEveryPrefix)
{
    TraceEvent e = makeEvent(TraceEventType::Gauge, -5000, 7,
                             0x7fffffffffffffffLL, -42, 1, -1);
    std::string out;
    encodeTraceEvent(out, e, 0);
    for (std::size_t cut = 0; cut < out.size(); ++cut) {
        std::size_t pos = 0;
        std::int64_t prev = 0;
        TraceEvent back;
        EXPECT_FALSE(
            decodeTraceEvent(out.data(), cut, pos, prev, back))
            << "prefix of " << cut << " bytes decoded";
    }
}

// --------------------------------------------------------------------
// Block compression
// --------------------------------------------------------------------

TEST(TraceCompress, AllCodecsRoundTrip)
{
    // Compressible: repeated structure (LZ should win), runs (RLE
    // beats raw), and incompressible pseudo-random bytes (raw wins).
    std::string structured;
    for (int i = 0; i < 200; ++i)
        structured += "kernel.gemm.fwd/" + std::to_string(i % 7);
    std::string runs(4096, '\0');
    std::string random;
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 3000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        random.push_back(static_cast<char>(x & 0xff));
    }

    for (const std::string &input : {structured, runs, random,
                                     std::string()}) {
        for (TraceCodec codec :
             {TraceCodec::Raw, TraceCodec::Rle, TraceCodec::Lz}) {
            const std::string comp = compressBlock(input, codec);
            std::string back;
            ASSERT_TRUE(decompressBlock(comp.data(), comp.size(),
                                        codec, input.size(), back))
                << traceCodecName(codec);
            EXPECT_EQ(back, input) << traceCodecName(codec);
        }
        TraceCodec picked = TraceCodec::Raw;
        const std::string comp = compressBlockAuto(input, picked);
        std::string back;
        ASSERT_TRUE(decompressBlock(comp.data(), comp.size(), picked,
                                    input.size(), back));
        EXPECT_EQ(back, input);
        EXPECT_LE(comp.size(),
                  compressBlock(input, TraceCodec::Raw).size());
    }
}

TEST(TraceCompress, DecoderRejectsCorruptPayloads)
{
    std::string input;
    for (int i = 0; i < 500; ++i)
        input += "abcabcabc" + std::to_string(i % 3);
    TraceCodec codec = TraceCodec::Raw;
    std::string comp = compressBlockAuto(input, codec);
    ASSERT_NE(codec, TraceCodec::Raw);

    std::string back;
    // Wrong expected size.
    EXPECT_FALSE(decompressBlock(comp.data(), comp.size(), codec,
                                 input.size() + 1, back));
    // Truncated payload.
    EXPECT_FALSE(decompressBlock(comp.data(), comp.size() / 2, codec,
                                 input.size(), back));
}

// --------------------------------------------------------------------
// Container round-trip
// --------------------------------------------------------------------

TEST(TraceContainer, RoundTripsEventsAndIncrementalNames)
{
    const std::string path = tempPath("trace_roundtrip.bptr");
    std::vector<std::string> names = {"gemm", "softmax"};
    std::vector<TraceEvent> first = {
        makeEvent(TraceEventType::Kernel, 1000, 0, 120, 7, 8, 9),
        makeEvent(TraceEventType::Kernel, 900, 1, -3, 0, 0, 0),
        makeEvent(TraceEventType::Counter, 5000, 0, 1),
    };

    TraceWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.appendChunk(first, names).ok());

    // Second chunk introduces a new name; ids stay dense.
    names.push_back("layernorm");
    std::vector<TraceEvent> second = {
        makeEvent(TraceEventType::Kernel, 7000, 2, 55, 1, 2, 3),
        makeEvent(TraceEventType::Mark, 7100, 1),
    };
    ASSERT_TRUE(writer.appendChunk(second, names).ok());
    ASSERT_TRUE(writer.close().ok());
    EXPECT_EQ(writer.chunksWritten(), 2);
    EXPECT_EQ(writer.eventsWritten(), 5);

    TraceReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    EXPECT_FALSE(reader.truncatedTail());
    ASSERT_EQ(reader.chunkCount(), 2u);
    EXPECT_EQ(reader.eventCount(), 5);
    ASSERT_EQ(reader.names().size(), 3u);
    EXPECT_EQ(reader.name(0), "gemm");
    EXPECT_EQ(reader.name(2), "layernorm");
    EXPECT_EQ(reader.name(99), "<unknown>");
    EXPECT_EQ(reader.chunk(1).firstNameId, 2u);

    std::vector<TraceEvent> expected = first;
    expected.insert(expected.end(), second.begin(), second.end());
    const std::vector<TraceEvent> got = collectForward(reader);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_TRUE(got[i] == expected[i]) << "event " << i;
}

TEST(TraceContainer, BackwardIterationIsExactReverse)
{
    const std::string path = tempPath("trace_backward.bptr");
    const std::vector<std::string> names = {"k"};
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    std::int64_t ts = 0;
    for (int chunk = 0; chunk < 4; ++chunk) {
        std::vector<TraceEvent> events;
        for (int i = 0; i < 37; ++i) {
            ts += 13 + i;
            events.push_back(
                makeEvent(TraceEventType::Kernel, ts, 0, i, chunk));
        }
        ASSERT_TRUE(writer.appendChunk(events, names).ok());
    }
    ASSERT_TRUE(writer.close().ok());

    TraceReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    const std::vector<TraceEvent> forward = collectForward(reader);
    ASSERT_EQ(forward.size(), 4u * 37u);

    TraceBackwardIter it(reader);
    TraceEvent e;
    std::size_t i = forward.size();
    while (it.prev(e)) {
        ASSERT_GT(i, 0u);
        --i;
        EXPECT_TRUE(e == forward[i]) << "reverse position " << i;
    }
    EXPECT_EQ(i, 0u);
}

// --------------------------------------------------------------------
// Typed rejection + torn tails
// --------------------------------------------------------------------

TEST(TraceContainer, RejectsForeignShortAndVersionedFiles)
{
    const std::string path = tempPath("trace_reject.bptr");
    TraceReader reader;

    writeFile(path, "short");
    EXPECT_EQ(reader.open(path).error, IoError::Truncated);

    writeFile(path, std::string(64, 'x'));
    EXPECT_EQ(reader.open(path).error, IoError::BadMagic);

    // Valid container, then bump the version field (offset 4).
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer
                    .appendChunk({makeEvent(TraceEventType::Mark, 1, 0)},
                                 {"m"})
                    .ok());
    ASSERT_TRUE(writer.close().ok());
    std::string bytes = readFile(path);
    bytes[4] = 99;
    writeFile(path, bytes);
    EXPECT_EQ(reader.open(path).error, IoError::BadVersion);
}

TEST(TraceContainer, CorruptTailIsDroppedNotFatal)
{
    const std::string path = tempPath("trace_corrupt.bptr");
    const std::vector<std::string> names = {"k"};
    std::vector<TraceEvent> events;
    for (int i = 0; i < 50; ++i)
        events.push_back(
            makeEvent(TraceEventType::Kernel, 100 * i, 0, i));

    TraceWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.appendChunk(events, names).ok());
    const std::size_t goodEnd = readFile(path).size();
    ASSERT_TRUE(writer.appendChunk(events, names).ok());
    ASSERT_TRUE(writer.close().ok());

    // Flip one payload byte of the second chunk: its CRC fails, the
    // first chunk still replays.
    std::string bytes = readFile(path);
    bytes[goodEnd + kTraceChunkHeaderSize + 3] ^= 0x40;
    writeFile(path, bytes);

    TraceReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    EXPECT_TRUE(reader.truncatedTail());
    EXPECT_EQ(reader.tailStatus().error, IoError::BadChecksum);
    EXPECT_EQ(reader.chunkCount(), 1u);
    EXPECT_EQ(collectForward(reader).size(), 50u);

    // Chop the file mid-chunk instead: a torn payload tail.
    writeFile(path, readFile(path).substr(0, goodEnd + 20));
    ASSERT_TRUE(reader.open(path).ok());
    EXPECT_TRUE(reader.truncatedTail());
    EXPECT_EQ(reader.tailStatus().error, IoError::Truncated);
    EXPECT_EQ(reader.chunkCount(), 1u);
}

TEST(TraceContainer, TornWriteLosesAtMostTheOpenChunk)
{
    InjectorGuard guard;
    const std::string path = tempPath("trace_torn.bptr");
    const std::vector<std::string> names = {"k"};
    std::vector<TraceEvent> events;
    for (int i = 0; i < 80; ++i)
        events.push_back(
            makeEvent(TraceEventType::Kernel, 100 * i, 0, i));

    // io.write occurrence 1 is the file header, 2 the first chunk;
    // tear the second chunk's append mid-body.
    FaultInjector::instance().configure("torn@io.write:3");
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    ASSERT_TRUE(writer.appendChunk(events, names).ok());
    const IoStatus torn = writer.appendChunk(events, names);
    EXPECT_EQ(torn.error, IoError::WriteFailed);
    EXPECT_TRUE(writer.failed());
    // The writer never trusts the tail again.
    EXPECT_EQ(writer.appendChunk(events, names).error,
              IoError::WriteFailed);
    (void)writer.close();

    TraceReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    EXPECT_TRUE(reader.truncatedTail());
    EXPECT_EQ(reader.chunkCount(), 1u);
    EXPECT_EQ(collectForward(reader).size(), 80u);
}

TEST(TraceContainer, CommitFaultLatchesTheWriter)
{
    InjectorGuard guard;
    const std::string path = tempPath("trace_commit.bptr");
    FaultInjector::instance().configure("torn@io.commit:1");
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path).ok());
    const IoStatus status = writer.appendChunk(
        {makeEvent(TraceEventType::Mark, 1, 0)}, {"m"});
    EXPECT_EQ(status.error, IoError::WriteFailed);
    EXPECT_TRUE(writer.failed());
}

/**
 * Preemption while appending: the injector's Kill executes
 * std::_Exit(137) at the io.write site, so nothing of the in-flight
 * chunk lands and the file ends exactly after the last sealed chunk.
 * threadsafe death tests fork+exec, so the child really dies and the
 * parent can then replay what survived on disk.
 */
TEST(TraceContainerDeathTest, KillAtIoWriteLeavesReplayableChunks)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path = ::testing::TempDir() + "bp_trace_kill.bptr";
    const std::vector<std::string> names = {"k"};
    std::vector<TraceEvent> events;
    for (int i = 0; i < 25; ++i)
        events.push_back(
            makeEvent(TraceEventType::Kernel, 40 * i, 0, i));

    EXPECT_EXIT(
        {
            // Child: header write is occurrence 1, chunks 1 and 2 are
            // occurrences 2 and 3; die entering the third chunk.
            fs::remove(path);
            FaultInjector::instance().configure("kill@io.write:4");
            TraceWriter writer;
            if (!writer.open(path).ok())
                std::_Exit(3);
            for (int chunk = 0; chunk < 10; ++chunk)
                (void)writer.appendChunk(events, names);
        },
        ::testing::ExitedWithCode(137), "");

    TraceReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    EXPECT_FALSE(reader.truncatedTail());
    EXPECT_EQ(reader.chunkCount(), 2u);
    EXPECT_EQ(collectForward(reader).size(), 2u * 25u);
}

// --------------------------------------------------------------------
// Recorder
// --------------------------------------------------------------------

TEST(TraceRecorderTest, RejectsDoubleStartAndEmptyPath)
{
    RecorderGuard guard;
    TraceRecorder &recorder = TraceRecorder::instance();
    EXPECT_EQ(recorder.start(RecorderOptions{}).error,
              IoError::OpenFailed);

    RecorderOptions options;
    options.path = tempPath("trace_double.bptr");
    ASSERT_TRUE(recorder.start(options).ok());
    EXPECT_TRUE(recorder.recording());
    EXPECT_EQ(recorder.start(options).error, IoError::OpenFailed);
    ASSERT_TRUE(recorder.stop().ok());
    EXPECT_FALSE(recorder.recording());
    // stop() is idempotent.
    EXPECT_TRUE(recorder.stop().ok());
}

TEST(TraceRecorderTest, EightThreadsRecordWithoutLossOrTearing)
{
    RecorderGuard guard;
    const std::string path = tempPath("trace_threads.bptr");
    TraceRecorder &recorder = TraceRecorder::instance();
    RecorderOptions options;
    options.path = path;
    options.ringEvents = 256; // force flusher wakeups mid-run
    options.chunkBytes = 16 * 1024; // and multiple sealed chunks
    ASSERT_TRUE(recorder.start(options).ok());

    constexpr int kThreads = 8;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            const std::string name =
                "worker." + std::to_string(t);
            ProfileRecord rec;
            rec.name = name;
            rec.kind = OpKind::Gemm;
            rec.phase = Phase::Fwd;
            rec.scope = LayerScope::Transformer;
            rec.sub = SubLayer::AttnLinear;
            rec.stats.flops = 64;
            for (int i = 0; i < kPerThread; ++i) {
                recorder.counter(name, 2);
                // Per-thread streams must be stamped monotonically
                // (live events always are) — the flusher skips the
                // time-sort for single-producer drains.
                const std::int64_t now =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count();
                recorder.onKernel(rec, now, 250);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const std::int64_t recorded = recorder.eventsRecorded();
    ASSERT_TRUE(recorder.stop().ok());
    EXPECT_EQ(recorder.eventsDropped(), 0);
    EXPECT_EQ(recorded, kThreads * kPerThread * 2);

    ReplaySummary summary;
    ASSERT_TRUE(replayTrace(path, summary).ok());
    EXPECT_FALSE(summary.truncatedTail);
    EXPECT_EQ(summary.eventCount, recorded);
    EXPECT_EQ(summary.kernels.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(summary.counterTotals.at("worker." +
                                           std::to_string(t)),
                  2 * kPerThread);
    }
    // Within each chunk the flusher time-sorts interleaved producers.
    TraceReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    for (std::size_t c = 0; c < reader.chunkCount(); ++c) {
        std::vector<TraceEvent> events;
        ASSERT_TRUE(reader.readChunk(c, events).ok());
        for (std::size_t i = 1; i < events.size(); ++i)
            EXPECT_LE(events[i - 1].tsNs, events[i].tsNs);
    }
}

TEST(TraceRecorderTest, StartsFromEnvKnobs)
{
    // maybeStartFromEnv is one-shot per process and the suite runs
    // with no BERTPROF_TRACE set, so exercise the parsing path only:
    // a second call must be a no-op even with the variable set.
    RecorderGuard guard;
    TraceRecorder &recorder = TraceRecorder::instance();
    recorder.maybeStartFromEnv();
    EXPECT_FALSE(recorder.recording());
}

// --------------------------------------------------------------------
// Live vs replayed equivalence (the acceptance bar)
// --------------------------------------------------------------------

BertConfig
nanoConfig()
{
    BertConfig c;
    c.name = "bert-nano";
    c.numLayers = 1;
    c.dModel = 16;
    c.numHeads = 2;
    c.dFf = 32;
    c.vocabSize = 64;
    c.maxPositions = 16;
    c.batch = 2;
    c.seqLen = 8;
    c.maxPredictions = 2;
    return c;
}

void
expectAggregatesIdentical(
    const std::map<std::string, ProfileAggregate> &live,
    const std::map<std::string, ProfileAggregate> &replayed)
{
    ASSERT_EQ(live.size(), replayed.size());
    for (const auto &[key, agg] : live) {
        const auto it = replayed.find(key);
        ASSERT_NE(it, replayed.end()) << key;
        // Bit-identical, not approximately equal: the container
        // stores the integer-ns durations the live seconds were
        // derived from.
        EXPECT_EQ(agg.seconds, it->second.seconds) << key;
        EXPECT_EQ(agg.stats.flops, it->second.stats.flops) << key;
        EXPECT_EQ(agg.stats.bytesRead, it->second.stats.bytesRead)
            << key;
        EXPECT_EQ(agg.stats.bytesWritten,
                  it->second.stats.bytesWritten)
            << key;
        EXPECT_EQ(agg.kernelCount, it->second.kernelCount) << key;
    }
}

TEST(TelemetryReplay, RecordedRunReplaysToExactLiveAggregates)
{
    RecorderGuard guard;
    const std::string path = tempPath("trace_live.bptr");
    const BertConfig config = nanoConfig();
    MetricsRegistry::instance().resetForTest();

    NnRuntime rt;
    Profiler live;
    rt.profiler = &live;
    BertPretrainer model(config, &rt);
    Rng init(1234);
    model.initialize(init);
    SyntheticDataset dataset(config, 77);
    // The optimizer profiles through its own pointer; attach the same
    // live profiler everywhere so live and trace see identical sets.
    Lamb lamb{OptimizerConfig{}, &live};
    GradScaler scaler(1024.0f);
    LrSchedule schedule(1e-3f, 2, 100, DecayKind::Linear);
    Trainer trainer(model, lamb, scaler, schedule, dataset, rt);

    TraceRecorder &recorder = TraceRecorder::instance();
    RecorderOptions options;
    options.path = path;
    ASSERT_TRUE(recorder.start(options).ok());
    std::vector<TrainStepResult> results;
    for (int i = 0; i < 3; ++i)
        results.push_back(trainer.trainStep());
    ASSERT_TRUE(recorder.stop().ok());

    ReplaySummary summary;
    ASSERT_TRUE(replayTrace(path, summary).ok());
    EXPECT_FALSE(summary.truncatedTail);

    // Every live kernel replays field-for-field.
    ASSERT_EQ(summary.kernels.size(), live.records().size());
    ASSERT_EQ(summary.kernelEndNs.size(), summary.kernels.size());
    for (std::size_t i = 0; i < summary.kernels.size(); ++i) {
        const ProfileRecord &a = live.records()[i];
        const ProfileRecord &b = summary.kernels[i];
        EXPECT_EQ(a.name, b.name) << i;
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.phase, b.phase) << i;
        EXPECT_EQ(a.scope, b.scope) << i;
        EXPECT_EQ(a.sub, b.sub) << i;
        EXPECT_EQ(a.stats.flops, b.stats.flops) << i;
        EXPECT_EQ(a.stats.bytesRead, b.stats.bytesRead) << i;
        EXPECT_EQ(a.stats.bytesWritten, b.stats.bytesWritten) << i;
        EXPECT_EQ(a.seconds, b.seconds) << i; // bit-identical
    }

    // Fig. 3 / Fig. 4 aggregates are exactly the live ones.
    Profiler replayed;
    summary.fillProfiler(replayed);
    EXPECT_EQ(live.totalSeconds(), replayed.totalSeconds());
    expectAggregatesIdentical(live.byScope(), replayed.byScope());
    expectAggregatesIdentical(live.bySubLayer(),
                              replayed.bySubLayer());
    expectAggregatesIdentical(live.byPhase(), replayed.byPhase());

    // And the exported Chrome JSON is byte-identical.
    EXPECT_EQ(profileToChromeJson(live.records()),
              profileToChromeJson(replayed.records()));
    EXPECT_EQ(profileToCsv(live.records()).render(),
              profileToCsv(replayed.records()).render());

    // Step events round-trip too, with bit-exact loss/lr floats.
    ASSERT_EQ(summary.steps.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(summary.steps[i].step,
                  static_cast<std::int64_t>(i));
        EXPECT_EQ(summary.steps[i].status,
                  static_cast<int>(results[i].status));
        EXPECT_EQ(summary.steps[i].loss,
                  static_cast<float>(results[i].metrics.totalLoss()));
        EXPECT_EQ(summary.steps[i].lr, results[i].lr);
    }
    // The live registry counted the same steps the trace recorded.
    EXPECT_EQ(MetricsRegistry::instance().counter("train.steps").value(),
              3);
}

TEST(TelemetryReplay, ServeAndScalarEventsRoundTrip)
{
    RecorderGuard guard;
    const std::string path = tempPath("trace_serve.bptr");
    TraceRecorder &recorder = TraceRecorder::instance();
    RecorderOptions options;
    options.path = path;
    ASSERT_TRUE(recorder.start(options).ok());
    recorder.onServeBatch(1200, 3400, 4, 128, 70000);
    recorder.onCheckpoint(17, true, 5000000);
    recorder.gauge("serve.queue_depth", -2.5);
    recorder.mark("warmup.done");
    ASSERT_TRUE(recorder.stop().ok());

    ReplaySummary summary;
    ASSERT_TRUE(replayTrace(path, summary).ok());
    ASSERT_EQ(summary.serveBatches.size(), 1u);
    const ReplayServeBatch &batch = summary.serveBatches[0];
    EXPECT_EQ(batch.queueSeconds, 1200 * 1e-9);
    EXPECT_EQ(batch.computeSeconds, 3400 * 1e-9);
    EXPECT_EQ(batch.batchSize, 4);
    EXPECT_EQ(batch.paddedLen, 128);
    EXPECT_EQ(batch.queueDepth, 70000); // u32 lanes survive >255
    ASSERT_EQ(summary.checkpoints.size(), 1u);
    EXPECT_EQ(summary.checkpoints[0].step, 17);
    EXPECT_TRUE(summary.checkpoints[0].ok);
    EXPECT_EQ(summary.gauges.at("serve.queue_depth"), -2.5);
    EXPECT_EQ(summary.markCount, 1);
}

} // namespace
} // namespace bertprof
