/**
 * Shape-level validation of the analytical model against the real CPU
 * substrate: when the DeviceSpec is set to CPU-like ratios, the
 * modeled breakdown of the tiny configuration must agree with the
 * *measured* CPU profile on the coarse structure — which group
 * dominates, and roughly how much of the time is GEMM work. This is
 * the same extrapolate-by-ratio argument the paper makes in Sec. 7.
 */

#include <algorithm>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "data/synthetic.h"
#include "nn/bert_pretrainer.h"
#include "optim/lamb.h"
#include "runtime/config.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

/** A spec with scalar-CPU-like compute/bandwidth ratios. */
DeviceSpec
cpuLikeSpec()
{
    DeviceSpec spec;
    spec.name = "scalar-cpu-like";
    // Single-core scalar throughput vs cache/DRAM bandwidth.
    spec.matrixFlopsFp32 = 4e9;
    spec.matrixFlopsFp16 = 4e9;
    spec.vectorFlopsFp32 = 2e9;
    spec.vectorFlopsFp16 = 2e9;
    spec.memBandwidth = 12e9;
    spec.streamBwFraction = 0.6;
    spec.kernelLaunchOverhead = 1e-7; // a function call, not a launch
    spec.computeUnits = 1;
    spec.gemmPeakFractionFp32 = 0.9;
    spec.gemmPeakFractionFp16 = 0.9;
    spec.bwRampBytes = 4096;
    // No wide matrix engine: small tiles run at full scalar density
    // and there is no deep MAC pipeline to fill.
    spec.gemmTileDensityNorm = 8.0;
    spec.gemmKSaturation = 4.0;
    return spec;
}

struct MeasuredProfile {
    std::map<std::string, Seconds> bySubLayer;
    Seconds gemmSeconds = 0.0;
    Seconds totalSeconds = 0.0;
};

MeasuredProfile
measureSubstrate(const BertConfig &config)
{
    // cpuLikeSpec() models a *scalar* CPU, so measure against the
    // scalar reference GEMM engine; the packed microkernel runs
    // GEMMs several times faster than scalar while the non-GEMM
    // kernels stay memory-bound, which legitimately shifts the
    // measured breakdown away from what a scalar-ratio model
    // predicts.
    setGemmImpl(GemmImpl::Reference);
    NnRuntime rt;
    Profiler profiler;
    rt.profiler = &profiler;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(55);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 56);
    OptimizerConfig opt_config;
    Lamb lamb(opt_config, &profiler);
    // Warm up once (allocator effects), then measure one iteration —
    // the paper's own methodology.
    for (int warm = 0; warm < 2; ++warm) {
        if (warm == 1)
            profiler.clear();
        trainer.zeroGrad();
        trainer.forwardBackward(dataset.nextBatch());
        lamb.step(trainer.parameters());
    }

    MeasuredProfile measured;
    measured.totalSeconds = profiler.totalSeconds();
    for (const auto &[name, agg] : profiler.bySubLayer())
        measured.bySubLayer[name] = agg.seconds;
    for (const auto &rec : profiler.records())
        if (rec.kind == OpKind::Gemm || rec.kind == OpKind::BatchedGemm)
            measured.gemmSeconds += rec.seconds;
    clearGemmImplOverride();
    return measured;
}

TEST(ModelVsSubstrate, DominantSubLayerGroupAgrees)
{
    BertConfig config = tinyBertConfig();
    // Widen the FC layer so GEMM work clearly dominates (as in the
    // real model; the test config is otherwise tiny).
    config.dFf = 4 * config.dModel;
    const MeasuredProfile measured = measureSubstrate(config);

    Characterizer characterizer(cpuLikeSpec());
    const auto modeled = characterizer.run(config);

    auto argmax = [](const std::map<std::string, Seconds> &groups) {
        std::string best;
        Seconds best_s = -1.0;
        for (const auto &[name, s] : groups) {
            if (name.rfind("LAMB", 0) == 0 || name == "Grad L2 norm" ||
                name == "Embedding ops" || name == "Output ops")
                continue; // compare transformer-internal groups
            if (s > best_s) {
                best = name;
                best_s = s;
            }
        }
        return best;
    };
    std::map<std::string, Seconds> modeled_groups;
    for (const auto &[name, agg] : modeled.bySubLayer)
        modeled_groups[name] = agg.seconds;

    EXPECT_EQ(argmax(measured.bySubLayer), argmax(modeled_groups));
    EXPECT_EQ(argmax(measured.bySubLayer), "FC GEMM");
}

TEST(ModelVsSubstrate, GemmShareAgreesCoarsely)
{
    BertConfig config = tinyBertConfig();
    config.dFf = 4 * config.dModel;
    const MeasuredProfile measured = measureSubstrate(config);
    const double measured_share =
        measured.gemmSeconds / measured.totalSeconds;

    Characterizer characterizer(cpuLikeSpec());
    const double modeled_share = characterizer.run(config).gemmShare();
    // Coarse agreement: same half of the spectrum, within 25 points.
    EXPECT_NEAR(modeled_share, measured_share, 0.25);
    EXPECT_GT(measured_share, 0.4);
    EXPECT_GT(modeled_share, 0.4);
}

} // namespace
} // namespace bertprof
