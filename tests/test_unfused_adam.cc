/** Tests for UnfusedAdam: numerical equivalence with fused Adam and
 *  the kernel-count / traffic blowup of Fig. 12a. */

#include <gtest/gtest.h>

#include "optim/adam.h"
#include "optim/unfused_adam.h"
#include "util/rng.h"

namespace bertprof {
namespace {

Parameter
randomParam(const std::string &name, std::int64_t numel,
            std::uint64_t seed, bool no_decay = false)
{
    Parameter param(name, Shape({numel}), no_decay);
    Rng rng(seed);
    param.value.fillNormal(rng, 0.0f, 0.5f);
    param.grad.fillNormal(rng, 0.0f, 0.1f);
    return param;
}

TEST(UnfusedAdam, MatchesFusedAdamNumerically)
{
    Parameter fused_p = randomParam("w", 64, 7);
    Parameter unfused_p = randomParam("w", 64, 7);
    OptimizerConfig config;
    config.learningRate = 0.01f;
    config.weightDecay = 0.1f;
    Adam fused(config);
    UnfusedAdam unfused(config);

    Rng grad_rng(11);
    for (int step = 0; step < 5; ++step) {
        Tensor grads(Shape({64}));
        grads.fillNormal(grad_rng, 0.0f, 0.2f);
        for (std::int64_t i = 0; i < 64; ++i) {
            fused_p.grad.at(i) = grads.at(i);
            unfused_p.grad.at(i) = grads.at(i);
        }
        fused.step({&fused_p});
        unfused.step({&unfused_p});
        EXPECT_LT(maxAbsDiff(fused_p.value, unfused_p.value), 2e-5f)
            << "diverged at step " << step;
    }
}

TEST(UnfusedAdam, HonorsNoDecay)
{
    Parameter p = randomParam("b", 8, 3, /*no_decay=*/true);
    Parameter p_ref = randomParam("b", 8, 3, /*no_decay=*/true);
    OptimizerConfig config;
    config.weightDecay = 0.5f;
    UnfusedAdam unfused(config);
    Adam fused(config);
    unfused.step({&p});
    fused.step({&p_ref});
    EXPECT_LT(maxAbsDiff(p.value, p_ref.value), 2e-5f);
}

TEST(UnfusedAdam, LaunchesSixteenKernelsPerTensorPlusNorm)
{
    Profiler profiler;
    Parameter a = randomParam("a", 16, 1);
    Parameter b = randomParam("b", 16, 2);
    OptimizerConfig config;
    UnfusedAdam unfused(config, &profiler);
    unfused.step({&a, &b});
    EXPECT_EQ(profiler.records().size(),
              2u * UnfusedAdam::kKernelsPerTensor + 1u);
}

TEST(UnfusedAdam, MovesSeveralTimesTheTrafficOfFused)
{
    // Fig. 12a's point: the unfused version's memory accesses are a
    // multiple of the fused version's, though far less than the
    // kernel-count ratio.
    Profiler unfused_prof, fused_prof;
    Parameter a = randomParam("a", 1024, 5);
    Parameter b = randomParam("b", 1024, 5);
    OptimizerConfig config;
    UnfusedAdam unfused(config, &unfused_prof);
    Adam fused(config, &fused_prof);
    unfused.step({&a});
    fused.step({&b});

    auto bytes = [](const Profiler &profiler) {
        std::int64_t total = 0;
        for (const auto &rec : profiler.records())
            total += rec.stats.bytesTotal();
        return total;
    };
    const double ratio = static_cast<double>(bytes(unfused_prof)) /
                         static_cast<double>(bytes(fused_prof));
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 8.0);

    const double kernel_ratio =
        static_cast<double>(unfused_prof.records().size()) /
        static_cast<double>(fused_prof.records().size());
    EXPECT_GT(kernel_ratio, ratio); // kernels blow up more than bytes
}

TEST(UnfusedAdam, ReducesQuadraticLoss)
{
    Parameter p("w", Shape({4}));
    p.value.fill(1.0f);
    OptimizerConfig config;
    config.learningRate = 0.05f;
    config.weightDecay = 0.0f;
    UnfusedAdam unfused(config);
    for (int it = 0; it < 200; ++it) {
        for (int i = 0; i < 4; ++i)
            p.grad.at(i) = p.value.at(i); // minimize ||w||^2 / 2
        unfused.step({&p});
    }
    EXPECT_LT(p.value.absMax(), 0.2f);
}

} // namespace
} // namespace bertprof
