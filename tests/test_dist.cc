/** Tests for the multi-device models (comm, DP, tensor slicing). */

#include <gtest/gtest.h>

#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "dist/tensor_slicing.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

TEST(CommModel, SingleDeviceIsFree)
{
    CommModel comm(32e9, 5e-6);
    EXPECT_EQ(comm.allReduceTime(1 << 30, 1), 0.0);
    EXPECT_EQ(comm.allReduceTime(0, 8), 0.0);
}

TEST(CommModel, SimpleModelDividesBytesByBandwidth)
{
    CommModel comm(32e9, 0.0, AllReduceAlgo::Simple);
    EXPECT_NEAR(comm.allReduceTime(32'000'000'000LL, 128), 1.0, 1e-9);
}

TEST(CommModel, RingApproachesTwiceBytesOverBandwidth)
{
    CommModel comm(32e9, 0.0, AllReduceAlgo::Ring);
    const Seconds t128 = comm.allReduceTime(32'000'000'000LL, 128);
    EXPECT_NEAR(t128, 2.0 * 127.0 / 128.0, 1e-6);
    // Two devices: exactly bytes / bw.
    EXPECT_NEAR(comm.allReduceTime(32'000'000'000LL, 2), 1.0, 1e-6);
}

TEST(CommModel, RingLatencyScalesWithDeviceCount)
{
    CommModel comm(1e18, 1e-6, AllReduceAlgo::Ring);
    EXPECT_NEAR(comm.allReduceTime(8, 8), 2.0 * 7.0 * 1e-6, 1e-12);
}

TEST(CommModel, TransferTime)
{
    CommModel comm(10e9, 1e-6);
    EXPECT_NEAR(comm.transferTime(10'000'000'000LL), 1.0 + 1e-6, 1e-9);
}

class DistFixture : public ::testing::Test
{
  protected:
    DeviceSpec spec_ = mi100();
    CommModel comm_{spec_, AllReduceAlgo::Ring};
    DataParallelModel dp_{spec_, comm_};
    TensorSlicingModel ts_{spec_, comm_};
    BertConfig config_ = withPhase1(bertLarge(), 16);
};

TEST_F(DistFixture, SingleDeviceDpMatchesSingleGpu)
{
    const auto profile = dp_.evaluate(config_, 1, true);
    EXPECT_EQ(profile.exposedCommSeconds, 0.0);
    EXPECT_EQ(profile.totalCommSeconds, 0.0);
    EXPECT_GT(profile.computeSeconds, 0.0);
}

TEST_F(DistFixture, OverlapHidesMostCommunication)
{
    // Obs. 5 / Fig. 11 D2 vs D1.
    const auto d1 = dp_.evaluate(config_, 128, false);
    const auto d2 = dp_.evaluate(config_, 128, true);
    EXPECT_LT(d2.exposedCommSeconds, 0.35 * d1.exposedCommSeconds);
    EXPECT_NEAR(d2.computeSeconds, d1.computeSeconds, 1e-9);
    // D1's exposed communication is substantial (paper ~19%).
    const double d1_comm_share =
        d1.exposedCommSeconds / d1.totalSeconds();
    EXPECT_GT(d1_comm_share, 0.10);
    EXPECT_LT(d1_comm_share, 0.35);
}

TEST_F(DistFixture, DpComputeMatchesSingleDeviceTrace)
{
    const auto single = dp_.evaluate(config_, 1, true);
    const auto d128 = dp_.evaluate(config_, 128, true);
    EXPECT_NEAR(single.computeSeconds, d128.computeSeconds, 1e-9);
}

TEST_F(DistFixture, MixedPrecisionShrinksDpCommunication)
{
    BertConfig mp = config_;
    mp.precision = Precision::Mixed;
    const auto fp32 = dp_.evaluate(config_, 128, false);
    const auto fp16 = dp_.evaluate(mp, 128, false);
    EXPECT_LT(fp16.totalCommSeconds, 0.6 * fp32.totalCommSeconds);
}

TEST_F(DistFixture, TensorSlicingEmitsFourAllReducesPerLayer)
{
    const OpTrace trace =
        TensorSlicingModel::buildSlicedTrace(config_, 2);
    std::int64_t comm_ops = 0;
    for (const auto &op : trace.ops)
        comm_ops += op.kind == OpKind::Comm ? 1 : 0;
    EXPECT_EQ(comm_ops, 4 * config_.numLayers);
}

TEST_F(DistFixture, TensorSlicingSplitsGemmWork)
{
    const OpTrace full =
        TensorSlicingModel::buildSlicedTrace(config_, 1);
    const OpTrace sliced =
        TensorSlicingModel::buildSlicedTrace(config_, 8);
    auto transformer_gemm_flops = [](const OpTrace &trace) {
        std::int64_t total = 0;
        for (const auto &op : trace.ops)
            if (op.scope == LayerScope::Transformer &&
                (op.kind == OpKind::Gemm ||
                 op.kind == OpKind::BatchedGemm))
                total += op.stats.flops;
        return total;
    };
    // Per-device GEMM work is exactly 1/8 of the full model's.
    EXPECT_EQ(transformer_gemm_flops(sliced),
              transformer_gemm_flops(full) / 8);
}

TEST_F(DistFixture, TensorSlicingSplitsOptimizer)
{
    const OpTrace full =
        TensorSlicingModel::buildSlicedTrace(config_, 1);
    const OpTrace sliced =
        TensorSlicingModel::buildSlicedTrace(config_, 4);
    auto update_bytes = [](const OpTrace &trace) {
        std::int64_t total = 0;
        for (const auto &op : trace.ops)
            if (op.phase == Phase::Update)
                total += op.stats.bytesTotal();
        return total;
    };
    EXPECT_EQ(update_bytes(sliced), update_bytes(full) / 4);
}

TEST_F(DistFixture, TensorSlicingKeepsDrRcLnReplicated)
{
    const OpTrace full =
        TensorSlicingModel::buildSlicedTrace(config_, 1);
    const OpTrace sliced =
        TensorSlicingModel::buildSlicedTrace(config_, 8);
    auto drrcln_bytes = [](const OpTrace &trace) {
        std::int64_t total = 0;
        for (const auto &op : trace.ops)
            if (op.sub == SubLayer::DrRcLn)
                total += op.stats.bytesTotal();
        return total;
    };
    EXPECT_EQ(drrcln_bytes(sliced), drrcln_bytes(full));
}

TEST_F(DistFixture, TensorSlicingCommShareGrowsWithWays)
{
    // Takeaway 13 (T1 vs T2 uses larger B for 8-way, as the paper).
    const auto t1 = ts_.evaluate(withPhase1(bertLarge(), 16), 2);
    BertConfig b64 = withPhase1(bertLarge(), 64);
    const auto t2 = ts_.evaluate(b64, 8);
    const double share1 = t1.exposedCommSeconds / t1.timed.totalSeconds();
    const double share2 = t2.exposedCommSeconds / t2.timed.totalSeconds();
    EXPECT_GT(share1, 0.03);
    EXPECT_GT(share2, 1.5 * share1);
}

TEST_F(DistFixture, TensorSlicingLambShareShrinksWithWays)
{
    // Takeaway 12.
    const auto t1 = ts_.evaluate(config_, 2);
    const auto t8 = ts_.evaluate(config_, 8);
    auto lamb_share = [](const DistributedProfile &profile) {
        const auto scopes = profile.timed.byScope();
        auto it = scopes.find("Optimizer");
        return it == scopes.end()
                   ? 0.0
                   : it->second.seconds / profile.timed.totalSeconds();
    };
    EXPECT_GT(lamb_share(t1), lamb_share(t8));
}

TEST_F(DistFixture, TensorSlicingOneWayIsIdentity)
{
    BertTraceBuilder builder(config_);
    const OpTrace direct = builder.buildIteration();
    const OpTrace sliced =
        TensorSlicingModel::buildSlicedTrace(config_, 1);
    EXPECT_EQ(direct.size(), sliced.size());
    EXPECT_EQ(direct.totalFlops(), sliced.totalFlops());
}

TEST_F(DistFixture, AllReduceOpsCarryActivationBytes)
{
    const OpTrace sliced =
        TensorSlicingModel::buildSlicedTrace(config_, 2);
    const std::int64_t expected =
        config_.tokens() * config_.dModel * config_.activationBytes();
    for (const auto &op : sliced.ops) {
        if (op.kind == OpKind::Comm) {
            EXPECT_EQ(op.commBytes, expected);
        }
    }
}

} // namespace
} // namespace bertprof
