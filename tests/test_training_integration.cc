/**
 * End-to-end substrate integration: a tiny BERT must actually learn
 * on synthetic masked-LM data with each optimizer, and the profiler
 * must produce a sane breakdown of the real execution.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/bert_pretrainer.h"
#include "optim/adam.h"
#include "optim/lamb.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

/** Train for `iters` iterations; returns (first, last) window means. */
std::pair<double, double>
trainLossTrend(Optimizer &optimizer, BertPretrainer &trainer,
               SyntheticDataset &dataset, int iters)
{
    auto params = trainer.parameters();
    std::vector<double> losses;
    for (int it = 0; it < iters; ++it) {
        const PretrainBatch batch = dataset.nextBatch();
        trainer.zeroGrad();
        const auto result = trainer.forwardBackward(batch);
        optimizer.step(params);
        losses.push_back(result.totalLoss());
    }
    const int window = iters / 4;
    double first = 0.0, last = 0.0;
    for (int i = 0; i < window; ++i) {
        first += losses[static_cast<std::size_t>(i)];
        last += losses[losses.size() - 1 - static_cast<std::size_t>(i)];
    }
    return {first / window, last / window};
}

TEST(TrainingIntegration, LambReducesLoss)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(21);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 99);

    OptimizerConfig opt_config;
    opt_config.learningRate = 5e-3f;
    opt_config.weightDecay = 0.0f;
    Lamb lamb(opt_config);
    const auto [first, last] = trainLossTrend(lamb, trainer, dataset, 24);
    EXPECT_LT(last, first) << "LAMB failed to reduce training loss";
}

TEST(TrainingIntegration, AdamReducesLoss)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(22);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 100);

    OptimizerConfig opt_config;
    opt_config.learningRate = 2e-3f;
    opt_config.weightDecay = 0.0f;
    Adam adam(opt_config);
    const auto [first, last] = trainLossTrend(adam, trainer, dataset, 24);
    EXPECT_LT(last, first) << "Adam failed to reduce training loss";
}

TEST(TrainingIntegration, LossStaysFiniteWithDropout)
{
    BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.1f;
    BertPretrainer trainer(config, &rt);
    Rng init(23);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 101);
    OptimizerConfig opt_config;
    opt_config.learningRate = 1e-3f;
    Lamb lamb(opt_config);
    auto params = trainer.parameters();
    for (int it = 0; it < 6; ++it) {
        trainer.zeroGrad();
        const auto result = trainer.forwardBackward(dataset.nextBatch());
        EXPECT_TRUE(std::isfinite(result.totalLoss()));
        lamb.step(params);
    }
}

TEST(TrainingIntegration, ProfiledBreakdownCoversAllScopes)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    Profiler profiler;
    rt.profiler = &profiler;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(24);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 102);

    OptimizerConfig opt_config;
    Lamb lamb(opt_config, &profiler);
    trainer.zeroGrad();
    trainer.forwardBackward(dataset.nextBatch());
    lamb.step(trainer.parameters());

    const auto scopes = profiler.byScope();
    EXPECT_TRUE(scopes.count("Transformer"));
    EXPECT_TRUE(scopes.count("Embedding"));
    EXPECT_TRUE(scopes.count("Output"));
    EXPECT_TRUE(scopes.count("Optimizer"));
    EXPECT_GT(profiler.totalSeconds(), 0.0);

    // The transformer layers dominate even the real CPU execution
    // (the headline structure of the paper's Fig. 3).
    const Seconds total = profiler.totalSeconds();
    EXPECT_GT(scopes.at("Transformer").seconds / total, 0.3);
}

TEST(TrainingIntegration, ProfiledPhasesIncludeFwdBwdUpdate)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    Profiler profiler;
    rt.profiler = &profiler;
    BertPretrainer trainer(config, &rt);
    Rng init(25);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 103);
    OptimizerConfig opt_config;
    Lamb lamb(opt_config, &profiler);
    trainer.zeroGrad();
    trainer.forwardBackward(dataset.nextBatch());
    lamb.step(trainer.parameters());

    const auto phases = profiler.byPhase();
    EXPECT_TRUE(phases.count("FWD"));
    EXPECT_TRUE(phases.count("BWD"));
    EXPECT_TRUE(phases.count("UPDATE"));
}

TEST(TrainingIntegration, MlmAccuracyImprovesOnFixedBatch)
{
    // Overfit a single batch: prediction accuracy on the masked
    // positions must rise well above chance.
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(26);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 104);
    const PretrainBatch batch = dataset.nextBatch();

    OptimizerConfig opt_config;
    opt_config.learningRate = 1e-2f;
    opt_config.weightDecay = 0.0f;
    Lamb lamb(opt_config);
    auto params = trainer.parameters();

    double first_loss = 0.0, last_loss = 0.0;
    for (int it = 0; it < 100; ++it) {
        trainer.zeroGrad();
        const auto result = trainer.forwardBackward(batch);
        if (it == 0)
            first_loss = result.mlmLoss;
        last_loss = result.mlmLoss;
        lamb.step(params);
    }
    EXPECT_LT(last_loss, first_loss * 0.8)
        << "failed to overfit one batch";
}

} // namespace
} // namespace bertprof
