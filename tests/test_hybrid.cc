/** Tests for the hybrid (TS x DP) parallelism model. */

#include <gtest/gtest.h>

#include "dist/hybrid.h"

namespace bertprof {
namespace {

class HybridFixture : public ::testing::Test
{
  protected:
    DeviceSpec spec_ = mi100();
    CommModel comm_{spec_, AllReduceAlgo::Ring};
    HybridModel hybrid_{spec_, comm_};
    TensorSlicingModel ts_{spec_, comm_};
    BertConfig config_ = withPhase1(bertLarge(), 16);
};

TEST_F(HybridFixture, SingleReplicaEqualsPureTensorSlicing)
{
    const auto hybrid = hybrid_.evaluate(config_, 2, 1);
    const auto ts = ts_.evaluate(config_, 2);
    EXPECT_NEAR(hybrid.timed.totalSeconds(), ts.timed.totalSeconds(),
                1e-12);
    EXPECT_NEAR(hybrid.exposedCommSeconds, ts.exposedCommSeconds, 1e-12);
}

TEST_F(HybridFixture, SingleSliceEqualsDataParallelStructure)
{
    // ts_ways=1: compute equals a plain iteration; DP comm added.
    const auto hybrid = hybrid_.evaluate(config_, 1, 8);
    EXPECT_GT(hybrid.exposedCommSeconds, 0.0);
    const auto pure_ts = ts_.evaluate(config_, 1);
    EXPECT_GT(hybrid.timed.totalSeconds(), pure_ts.timed.totalSeconds());
}

TEST_F(HybridFixture, SlicingShrinksTheDpExchange)
{
    // The DP all-reduce covers 1/M of the model, so deeper slicing
    // means less DP traffic per device.
    const auto ts2 = hybrid_.evaluate(config_, 2, 8);
    const auto ts8 = hybrid_.evaluate(config_, 8, 8);
    const Seconds dp2 =
        ts2.totalCommSeconds - ts_.evaluate(config_, 2).totalCommSeconds;
    const Seconds dp8 =
        ts8.totalCommSeconds - ts_.evaluate(config_, 8).totalCommSeconds;
    EXPECT_LT(dp8, 0.5 * dp2);
}

TEST_F(HybridFixture, DpTailMostlyOverlapsWithBackprop)
{
    const auto hybrid = hybrid_.evaluate(config_, 2, 8);
    const auto ts = ts_.evaluate(config_, 2);
    const Seconds dp_total =
        hybrid.totalCommSeconds - ts.totalCommSeconds;
    const Seconds dp_exposed =
        hybrid.exposedCommSeconds - ts.exposedCommSeconds;
    EXPECT_LT(dp_exposed, 0.6 * dp_total);
}

TEST_F(HybridFixture, NetworkScopeAppearsInBreakdown)
{
    const auto hybrid = hybrid_.evaluate(config_, 2, 8);
    const auto scopes = hybrid.timed.byScope();
    ASSERT_TRUE(scopes.count("Network"));
    EXPECT_GT(scopes.at("Network").seconds, 0.0);
}

} // namespace
} // namespace bertprof
