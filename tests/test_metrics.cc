/**
 * @file
 * Live-metrics registry tests: counter/gauge semantics, the
 * log-bucketed histogram's exact stats and factor-of-two quantiles,
 * snapshot rendering, and registry reference stability — the
 * properties the training loop and serving runtime rely on when they
 * update instruments from hot paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace bertprof {
namespace {

TEST(Metrics, CounterAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    c.add(-2);
    EXPECT_EQ(c.value(), 40);
}

TEST(Metrics, GaugeIsLastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    EXPECT_EQ(g.value(), 3.5);
    g.set(-0.25);
    EXPECT_EQ(g.value(), -0.25);
    // Full double round-trip through the atomic bit store.
    g.set(1e-300);
    EXPECT_EQ(g.value(), 1e-300);
}

TEST(Metrics, HistogramExactStats)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);

    const std::vector<double> samples = {0.001, 0.002, 0.004,
                                         0.008, 0.5,   2.0};
    double sum = 0.0;
    for (double s : samples) {
        h.record(s);
        sum += s;
    }
    EXPECT_EQ(h.count(), static_cast<std::int64_t>(samples.size()));
    EXPECT_NEAR(h.sum(), sum, 1e-6);
    EXPECT_NEAR(h.mean(), sum / samples.size(), 1e-6);
    EXPECT_EQ(h.min(), 0.001);
    EXPECT_EQ(h.max(), 2.0);
}

TEST(Metrics, HistogramQuantilesWithinAFactorOfTwo)
{
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(0.010); // all mass in one bucket
    h.record(10.0);      // a lone outlier
    const double p50 = h.quantile(0.5);
    EXPECT_GE(p50, 0.005);
    EXPECT_LE(p50, 0.020);
    const double p100 = h.quantile(1.0);
    EXPECT_GE(p100, 5.0);
    EXPECT_LE(p100, 20.0);
}

TEST(Metrics, HistogramClampsNonPositiveSamples)
{
    Histogram h;
    h.record(0.0);
    h.record(-3.0);
    EXPECT_EQ(h.count(), 2);
    // Clamped into the lowest bucket, not dropped.
    EXPECT_EQ(h.bucketCount(0), 2);
}

TEST(Metrics, HistogramBucketMidsAreGeometric)
{
    for (int b = 1; b < Histogram::kBuckets; ++b) {
        EXPECT_GT(Histogram::bucketMid(b),
                  Histogram::bucketMid(b - 1));
        EXPECT_NEAR(Histogram::bucketMid(b) /
                        Histogram::bucketMid(b - 1),
                    2.0, 1e-9);
    }
}

TEST(Metrics, RegistryReturnsStableReferences)
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.resetForTest();
    Counter &a = reg.counter("stable.counter");
    a.add(5);
    Counter &b = reg.counter("stable.counter");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 5);
    // Distinct kinds may share a name without clashing.
    reg.gauge("stable.counter").set(1.5);
    EXPECT_EQ(reg.counter("stable.counter").value(), 5);
}

TEST(Metrics, SnapshotTextListsEveryInstrumentSorted)
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.resetForTest();
    reg.counter("zz.requests").add(3);
    reg.counter("aa.batches").add(1);
    reg.gauge("mm.depth").set(7.0);
    reg.histogram("mm.latency").record(0.25);
    const std::string text = reg.snapshotText();
    // Instruments of one kind render sorted by name.
    const std::size_t posA = text.find("aa.batches counter 1");
    const std::size_t posZ = text.find("zz.requests counter 3");
    ASSERT_NE(posA, std::string::npos) << text;
    ASSERT_NE(posZ, std::string::npos) << text;
    EXPECT_LT(posA, posZ);
    EXPECT_NE(text.find("mm.depth gauge 7"), std::string::npos)
        << text;
    EXPECT_NE(text.find("mm.latency histogram count=1"),
              std::string::npos)
        << text;

    reg.resetForTest();
    EXPECT_EQ(reg.counter("zz.requests").value(), 0);
}

TEST(Metrics, ConcurrentUpdatesAreExact)
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.resetForTest();
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            Counter &c = reg.counter("mt.counter");
            Histogram &h = reg.histogram("mt.hist");
            for (int i = 0; i < kPerThread; ++i) {
                c.add(1);
                h.record(0.001);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(reg.counter("mt.counter").value(),
              kThreads * kPerThread);
    EXPECT_EQ(reg.histogram("mt.hist").count(),
              kThreads * kPerThread);
}

} // namespace
} // namespace bertprof
