/** Tests for the software binary16 type, including full-domain sweeps. */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "tensor/half.h"

namespace bertprof {
namespace {

TEST(Half, ExactSmallValues)
{
    EXPECT_EQ(Half(0.0f).toFloat(), 0.0f);
    EXPECT_EQ(Half(1.0f).toFloat(), 1.0f);
    EXPECT_EQ(Half(-2.0f).toFloat(), -2.0f);
    EXPECT_EQ(Half(0.5f).toFloat(), 0.5f);
    EXPECT_EQ(Half(1024.0f).toFloat(), 1024.0f);
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(Half(1.0f).bits(), 0x3C00u);
    EXPECT_EQ(Half(-1.0f).bits(), 0xBC00u);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7BFFu); // max finite half
    EXPECT_EQ(Half(6.103515625e-05f).bits(), 0x0400u); // min normal
}

TEST(Half, OverflowBecomesInfinity)
{
    EXPECT_EQ(Half(70000.0f).bits(), 0x7C00u);
    EXPECT_EQ(Half(-70000.0f).bits(), 0xFC00u);
    EXPECT_TRUE(std::isinf(Half(1e10f).toFloat()));
}

TEST(Half, UnderflowBecomesSignedZero)
{
    EXPECT_EQ(Half(1e-10f).bits(), 0x0000u);
    EXPECT_EQ(Half(-1e-10f).bits(), 0x8000u);
}

TEST(Half, SubnormalsRepresentable)
{
    // Smallest positive subnormal half = 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(Half(tiny).bits(), 0x0001u);
    EXPECT_EQ(Half::fromBits(0x0001).toFloat(), tiny);
}

TEST(Half, NanPreserved)
{
    const float nan = std::nanf("");
    EXPECT_TRUE(std::isnan(Half(nan).toFloat()));
}

TEST(Half, InfinityPreserved)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(std::isinf(Half(inf).toFloat()));
    EXPECT_TRUE(std::isinf(Half(-inf).toFloat()));
    EXPECT_LT(Half(-inf).toFloat(), 0.0f);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half;
    // RNE rounds to the even mantissa (1.0).
    const float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(halfway).bits(), 0x3C00u);
    // 1 + 3*2^-11 is halfway between odd and even; rounds up to even.
    const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(halfway2).bits(), 0x3C02u);
}

TEST(Half, RoundTripEveryFiniteHalfExactly)
{
    // Property: float(h) -> half must reproduce h for all 63488
    // finite half patterns (and both zeros).
    for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
        const std::uint16_t h = static_cast<std::uint16_t>(bits);
        const std::uint32_t exponent = (h >> 10) & 0x1Fu;
        if (exponent == 0x1F)
            continue; // Inf/NaN handled separately
        const float f = Half::toFloat(h);
        EXPECT_EQ(Half::fromFloat(f), h) << "pattern " << bits;
    }
}

TEST(Half, MonotonicOnSamples)
{
    // Rounding must preserve (non-strict) order.
    float prev_rounded = roundToHalf(-65000.0f);
    for (float x = -65000.0f; x <= 65000.0f; x += 333.77f) {
        const float r = roundToHalf(x);
        EXPECT_GE(r, prev_rounded);
        prev_rounded = r;
    }
}

TEST(Half, RelativeErrorBounded)
{
    // For normal range, relative error of rounding <= 2^-11.
    for (float x : {0.001f, 0.37f, 1.7f, 123.456f, 6000.0f, 60000.0f}) {
        const float r = roundToHalf(x);
        EXPECT_LE(std::fabs(r - x) / x, std::ldexp(1.0f, -11));
    }
}

} // namespace
} // namespace bertprof
