/** Tests for the synthetic masked-LM dataset. */

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

class SyntheticTest : public ::testing::Test
{
  protected:
    BertConfig config_ = tinyBertConfig();
    SyntheticDataset dataset_{config_, 42};
};

TEST_F(SyntheticTest, BatchHasExpectedSizes)
{
    const PretrainBatch batch = dataset_.nextBatch();
    EXPECT_EQ(batch.tokenIds.size(),
              static_cast<std::size_t>(config_.tokens()));
    EXPECT_EQ(batch.segmentIds.size(), batch.tokenIds.size());
    EXPECT_EQ(batch.mlmPositions.size(),
              static_cast<std::size_t>(config_.maskedTokens()));
    EXPECT_EQ(batch.mlmLabels.size(), batch.mlmPositions.size());
    EXPECT_EQ(batch.nspLabels.size(),
              static_cast<std::size_t>(config_.batch));
}

TEST_F(SyntheticTest, TokenIdsWithinVocab)
{
    const PretrainBatch batch = dataset_.nextBatch();
    for (auto id : batch.tokenIds) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, config_.vocabSize);
    }
    for (auto label : batch.mlmLabels) {
        EXPECT_GE(label, 3); // labels are regular tokens
        EXPECT_LT(label, config_.vocabSize);
    }
}

TEST_F(SyntheticTest, MaskedPositionsAreMaskTokens)
{
    const PretrainBatch batch = dataset_.nextBatch();
    for (auto pos : batch.mlmPositions) {
        ASSERT_GE(pos, 0);
        ASSERT_LT(pos, config_.tokens());
        EXPECT_EQ(batch.tokenIds[static_cast<std::size_t>(pos)],
                  dataset_.maskId());
    }
}

TEST_F(SyntheticTest, MaskedPositionsUniquePerBatch)
{
    const PretrainBatch batch = dataset_.nextBatch();
    std::set<std::int64_t> unique(batch.mlmPositions.begin(),
                                  batch.mlmPositions.end());
    EXPECT_EQ(unique.size(), batch.mlmPositions.size());
}

TEST_F(SyntheticTest, SequencesStartWithClsAndContainSep)
{
    const PretrainBatch batch = dataset_.nextBatch();
    for (std::int64_t s = 0; s < config_.batch; ++s) {
        const std::size_t base =
            static_cast<std::size_t>(s * config_.seqLen);
        EXPECT_EQ(batch.tokenIds[base], dataset_.clsId());
        EXPECT_EQ(batch.tokenIds[base + static_cast<std::size_t>(
                                            config_.seqLen / 2)],
                  dataset_.sepId());
    }
}

TEST_F(SyntheticTest, SegmentsFlipAtMidpoint)
{
    const PretrainBatch batch = dataset_.nextBatch();
    for (std::int64_t s = 0; s < config_.batch; ++s) {
        const std::size_t base =
            static_cast<std::size_t>(s * config_.seqLen);
        EXPECT_EQ(batch.segmentIds[base + 1], 0);
        EXPECT_EQ(batch.segmentIds[base + static_cast<std::size_t>(
                                              config_.seqLen) -
                                   1],
                  1);
    }
}

TEST_F(SyntheticTest, NspLabelsAreBinary)
{
    const PretrainBatch batch = dataset_.nextBatch();
    for (auto label : batch.nspLabels)
        EXPECT_TRUE(label == 0 || label == 1);
}

TEST_F(SyntheticTest, DeterministicForSameSeed)
{
    SyntheticDataset a(config_, 7), b(config_, 7);
    const PretrainBatch ba = a.nextBatch();
    const PretrainBatch bb = b.nextBatch();
    EXPECT_EQ(ba.tokenIds, bb.tokenIds);
    EXPECT_EQ(ba.mlmPositions, bb.mlmPositions);
    EXPECT_EQ(ba.nspLabels, bb.nspLabels);
}

TEST_F(SyntheticTest, SuccessiveBatchesDiffer)
{
    const PretrainBatch first = dataset_.nextBatch();
    const PretrainBatch second = dataset_.nextBatch();
    EXPECT_NE(first.tokenIds, second.tokenIds);
}

} // namespace
} // namespace bertprof
