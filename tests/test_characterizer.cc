/** Tests for the Characterizer facade: the paper's headline shape
 *  agreements as assertions. */

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/report.h"

namespace bertprof {
namespace {

class CharacterizerTest : public ::testing::Test
{
  protected:
    Characterizer characterizer_{mi100()};
};

TEST_F(CharacterizerTest, ScopeSharesSumToOne)
{
    const auto result = characterizer_.run(withPhase1(bertLarge(), 8));
    double total = 0.0;
    for (const auto &[name, agg] : result.byScope)
        total += agg.seconds;
    EXPECT_NEAR(total, result.totalSeconds, 1e-9 * result.totalSeconds);
}

TEST_F(CharacterizerTest, TransformerLayersDominate)
{
    // Obs. 1: transformer layers dominate (68-85% in the paper).
    for (std::int64_t batch : {4L, 16L, 32L}) {
        const auto result =
            characterizer_.run(withPhase1(bertLarge(), batch));
        EXPECT_GT(result.scopeShare("Transformer"), 0.6);
        EXPECT_GT(result.scopeShare("Transformer"),
                  result.scopeShare("Optimizer"));
    }
}

TEST_F(CharacterizerTest, LambIsSecondHighestContributor)
{
    const auto result = characterizer_.run(withPhase1(bertLarge(), 32));
    const double lamb = result.scopeShare("Optimizer");
    EXPECT_GT(lamb, result.scopeShare("Output"));
    EXPECT_GT(lamb, result.scopeShare("Embedding"));
    EXPECT_GT(lamb, 0.05);
    EXPECT_LT(lamb, 0.15);
}

TEST_F(CharacterizerTest, LambShareGrowsAsTokensShrink)
{
    // Takeaway 1: 7-10% at B32 rising toward 25% at B4.
    const double b32 = characterizer_.run(withPhase1(bertLarge(), 32))
                           .scopeShare("Optimizer");
    const double b4 = characterizer_.run(withPhase1(bertLarge(), 4))
                          .scopeShare("Optimizer");
    EXPECT_GT(b4, 2.0 * b32);
}

TEST_F(CharacterizerTest, LambShareGrowsUnderMixedPrecision)
{
    // Takeaway 2.
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    const double fp32 = characterizer_.run(withPhase1(bertLarge(), 32))
                            .scopeShare("Optimizer");
    const double mixed = characterizer_.run(mp).scopeShare("Optimizer");
    EXPECT_GT(mixed, 1.5 * fp32);
}

TEST_F(CharacterizerTest, MixedPrecisionSpeedsUpIteration)
{
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    const double fp32 =
        characterizer_.run(withPhase1(bertLarge(), 32)).totalSeconds;
    const double mixed = characterizer_.run(mp).totalSeconds;
    EXPECT_GT(fp32 / mixed, 1.5);
    EXPECT_LT(fp32 / mixed, 3.0);
}

TEST_F(CharacterizerTest, GemmShareDropsUnderMixedPrecision)
{
    // Takeaway 3.
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    EXPECT_LT(characterizer_.run(mp).gemmShare(),
              characterizer_.run(withPhase1(bertLarge(), 32))
                  .gemmShare());
}

TEST_F(CharacterizerTest, AttentionShareGrowsQuadraticallyWithN)
{
    // Takeaway 10: n=512 at matched tokens raises the attention-op
    // share substantially.
    const auto n128 = characterizer_.run(withPhase1(bertLarge(), 16));
    const auto n512 = characterizer_.run(withPhase2(bertLarge(), 4));
    const double a128 = n128.subLayerShare("Attn B-GEMM") +
                        n128.subLayerShare("Scale+Mask+DR+SM");
    const double a512 = n512.subLayerShare("Attn B-GEMM") +
                        n512.subLayerShare("Scale+Mask+DR+SM");
    EXPECT_GT(a512, 1.5 * a128);
}

TEST_F(CharacterizerTest, GemmAndLambShareGrowWithLayerWidth)
{
    // Takeaway 11 (C2 -> C3).
    const auto c2 = characterizer_.run(withPhase1(scalingC2(), 16));
    const auto c3 = characterizer_.run(withPhase1(scalingC3(), 16));
    EXPECT_GT(c3.gemmShare(), c2.gemmShare());
    EXPECT_GT(c3.scopeShare("Optimizer"), c2.scopeShare("Optimizer"));
}

TEST_F(CharacterizerTest, LayerCountScalesLinearly)
{
    // Obs. 4.
    BertConfig n12 = withPhase1(bertLarge(), 8);
    n12.numLayers = 12;
    BertConfig n24 = withPhase1(bertLarge(), 8);
    const double t12 = characterizer_.run(n12).totalSeconds;
    const double t24 = characterizer_.run(n24).totalSeconds;
    EXPECT_NEAR(t24 / t12, 2.0, 0.25);
}

TEST_F(CharacterizerTest, CheckpointingAddsKernelsAndTime)
{
    BertConfig ckpt = withPhase1(bertLarge(), 32);
    ckpt.checkpointEvery = 6;
    const auto base = characterizer_.run(withPhase1(bertLarge(), 32));
    const auto with = characterizer_.run(ckpt);
    const double kernel_growth =
        static_cast<double>(with.kernelCount) / base.kernelCount;
    const double time_growth = with.totalSeconds / base.totalSeconds;
    EXPECT_GT(kernel_growth, 1.2);
    EXPECT_LT(kernel_growth, 1.45);
    EXPECT_GT(time_growth, 1.15);
    EXPECT_LT(time_growth, 1.45);
    // LAMB's absolute time is unchanged; its share drops.
    EXPECT_LT(with.scopeShare("Optimizer"),
              base.scopeShare("Optimizer"));
}

TEST_F(CharacterizerTest, ReportsRenderNonEmpty)
{
    const auto result = characterizer_.run(withPhase1(bertLarge(), 4));
    Table scope = breakdownTable(result.byScope, result.totalSeconds,
                                 "scopes");
    EXPECT_GE(scope.rowCount(), 4u);
    Table gemms = gemmIntensityTable(result, characterizer_.spec(), 0);
    EXPECT_EQ(gemms.rowCount(), 8u); // 6 linear/FC + 2 B-GEMMs (fwd)
    const auto row = scopeShareRow(result, {"Transformer", "Optimizer"});
    EXPECT_EQ(row.size(), 3u);
}

TEST_F(CharacterizerTest, InferenceTraceHasNoOptimizerShare)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 1));
    const auto result = characterizer_.runTrace(
        withPhase1(bertLarge(), 1), builder.buildInference());
    EXPECT_EQ(result.scopeShare("Optimizer"), 0.0);
    EXPECT_GT(result.scopeShare("Transformer"), 0.8);
}

} // namespace
} // namespace bertprof
