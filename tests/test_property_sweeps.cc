/**
 * Property sweeps: randomized and grid-parameterized invariants over
 * the device model, footprint model, and characterizer — the "for all
 * inputs" guarantees the point tests cannot give.
 */

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "dist/tensor_slicing.h"
#include "perf/footprint.h"
#include "perf/gemm_model.h"
#include "perf/roofline.h"
#include "util/rng.h"

namespace bertprof {
namespace {

TEST(GemmModelFuzz, EfficiencyAlwaysInBounds)
{
    const DeviceSpec spec = mi100();
    GemmModel model(spec);
    Rng rng(123);
    for (int trial = 0; trial < 2000; ++trial) {
        GemmDims dims;
        dims.m = rng.uniformInt(1, 8192);
        dims.n = rng.uniformInt(1, 8192);
        dims.k = rng.uniformInt(1, 8192);
        dims.batch = rng.uniformInt(1, 1024);
        for (DType dtype : {DType::F32, DType::F16}) {
            const auto eff = model.evaluate(dims, dtype);
            EXPECT_GT(eff.efficiency, 0.0) << dims.label();
            EXPECT_LE(eff.efficiency, spec.gemmPeakFraction(dtype))
                << dims.label();
            EXPECT_LE(eff.achievedFlops, spec.matrixFlops(dtype));
            EXPECT_LE(eff.waveUtilization, 1.0);
            EXPECT_LE(eff.padUtilization, 1.0);
            EXPECT_LE(eff.kUtilization, 1.0);
        }
    }
}

TEST(GemmModelFuzz, TimeNeverNegativeOrNan)
{
    KernelCostModel cost(mi100());
    Rng rng(321);
    for (int trial = 0; trial < 2000; ++trial) {
        OpDesc op;
        const int kind = static_cast<int>(rng.uniformInt(0, 4));
        op.kind = static_cast<OpKind>(kind);
        if (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm) {
            op.gemm.m = rng.uniformInt(1, 4096);
            op.gemm.n = rng.uniformInt(1, 4096);
            op.gemm.k = rng.uniformInt(1, 4096);
            op.gemm.batch =
                op.kind == OpKind::BatchedGemm ? rng.uniformInt(2, 512)
                                               : 1;
            op.stats = gemmStats(op.gemm.m, op.gemm.n, op.gemm.k,
                                 op.gemm.batch);
        } else if (op.kind == OpKind::Comm) {
            op.commBytes = rng.uniformInt(0, 1 << 30);
        } else {
            op.numel = rng.uniformInt(0, 1 << 26);
            op.stats = elementwiseStats(op.numel, rng.uniformInt(1, 4),
                                        rng.uniformInt(0, 3),
                                        rng.uniformInt(0, 16));
        }
        const KernelTime time = cost.evaluate(op);
        EXPECT_TRUE(std::isfinite(time.total())) << op.name;
        EXPECT_GE(time.total(), 0.0);
        EXPECT_GE(time.compute, 0.0);
        EXPECT_GE(time.memory, 0.0);
    }
}

TEST(GemmModelFuzz, MoreWorkNeverFinishesFasterAtFixedShapeClass)
{
    // Scaling batch count must scale time (weak monotonicity).
    KernelCostModel cost(mi100());
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        OpDesc op;
        op.kind = OpKind::BatchedGemm;
        op.gemm.m = rng.uniformInt(16, 256);
        op.gemm.n = rng.uniformInt(16, 256);
        op.gemm.k = rng.uniformInt(16, 256);
        op.gemm.batch = rng.uniformInt(1, 64);
        op.stats = gemmStats(op.gemm.m, op.gemm.n, op.gemm.k,
                             op.gemm.batch);
        OpDesc bigger = op;
        bigger.gemm.batch *= 4;
        bigger.stats = gemmStats(op.gemm.m, op.gemm.n, op.gemm.k,
                                 bigger.gemm.batch);
        EXPECT_GE(cost.evaluate(bigger).total(),
                  cost.evaluate(op).total());
    }
}

TEST(FootprintFuzz, TotalsArePositiveAndAdditive)
{
    Rng rng(7);
    for (int trial = 0; trial < 300; ++trial) {
        BertConfig config = bertBase();
        config.numLayers = static_cast<int>(rng.uniformInt(1, 48));
        config.dModel = 64 * rng.uniformInt(1, 32);
        config.numHeads = 8;
        while (config.dModel % config.numHeads != 0)
            ++config.dModel;
        config.dFf = config.dModel * 4;
        config.batch = rng.uniformInt(1, 64);
        config.seqLen = 32 * rng.uniformInt(1, 16);
        config.maxPositions = 512;
        if (config.seqLen > config.maxPositions)
            config.seqLen = 512;
        config.maxPredictions =
            std::max<std::int64_t>(1, config.seqLen / 8);
        const auto fp = trainingFootprint(config);
        EXPECT_GT(fp.total(), 0);
        EXPECT_EQ(fp.total(), fp.weights + fp.gradients +
                                  fp.optimizerState + fp.activations +
                                  fp.workspace);
        EXPECT_LE(inferenceFootprint(config).total(), fp.total());
    }
}

// ---- Characterizer invariants over a config grid ----

using GridCase = std::tuple<Precision, OptimizerKind, TaskHead>;

class CharacterizerGrid : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(CharacterizerGrid, SharesArePartitionAndTimesFinite)
{
    const auto [precision, optimizer, head] = GetParam();
    BertConfig config = withPhase1(bertLarge(), 8);
    config.precision = precision;
    config.optimizer = optimizer;
    config.taskHead = head;
    ASSERT_EQ(config.validate(), "");

    Characterizer characterizer(mi100());
    const auto result = characterizer.run(config);
    EXPECT_TRUE(std::isfinite(result.totalSeconds));
    EXPECT_GT(result.totalSeconds, 0.0);

    double scope_total = 0.0;
    for (const auto &[name, agg] : result.byScope) {
        EXPECT_GE(agg.seconds, 0.0);
        scope_total += agg.seconds;
    }
    EXPECT_NEAR(scope_total, result.totalSeconds,
                1e-9 * result.totalSeconds);
    EXPECT_GT(result.scopeShare("Transformer"), 0.5);
    EXPECT_GT(result.gemmShare(), 0.2);
    EXPECT_LT(result.gemmShare(), 0.95);
}

TEST_P(CharacterizerGrid, MixedPrecisionNeverSlower)
{
    const auto [precision, optimizer, head] = GetParam();
    if (precision == Precision::Mixed)
        GTEST_SKIP() << "comparison baseline case";
    BertConfig fp32 = withPhase1(bertLarge(), 8);
    fp32.optimizer = optimizer;
    fp32.taskHead = head;
    BertConfig mp = fp32;
    mp.precision = Precision::Mixed;
    Characterizer characterizer(mi100());
    EXPECT_LT(characterizer.run(mp).totalSeconds,
              characterizer.run(fp32).totalSeconds);
}

INSTANTIATE_TEST_SUITE_P(
    PrecisionOptimizerHead, CharacterizerGrid,
    ::testing::Combine(
        ::testing::Values(Precision::FP32, Precision::Mixed),
        ::testing::Values(OptimizerKind::Lamb, OptimizerKind::Adam,
                          OptimizerKind::Sgd),
        ::testing::Values(TaskHead::Pretrain,
                          TaskHead::SequenceClassification,
                          TaskHead::SpanPrediction)));

// ---- Tensor-slicing invariants vs fusion options ----

class SlicingWithFusion
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>>
{
};

TEST_P(SlicingWithFusion, SlicedGemmWorkIsExactlyOneNth)
{
    const auto [fuse_qkv, fuse_gelu, fuse_smds] = GetParam();
    TraceOptions options;
    options.fuseQkvGemm = fuse_qkv;
    options.fuseGelu = fuse_gelu;
    options.fuseScaleMaskDrSm = fuse_smds;
    const BertConfig config = withPhase1(bertLarge(), 8);

    auto gemm_flops = [&](int ways) {
        std::int64_t total = 0;
        for (const auto &op : TensorSlicingModel::buildSlicedTrace(
                 config, ways, options)
                 .ops) {
            if (op.scope == LayerScope::Transformer &&
                (op.kind == OpKind::Gemm ||
                 op.kind == OpKind::BatchedGemm))
                total += op.stats.flops;
        }
        return total;
    };
    EXPECT_EQ(gemm_flops(4), gemm_flops(1) / 4);
}

INSTANTIATE_TEST_SUITE_P(
    FusionCombos, SlicingWithFusion,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool()));

} // namespace
} // namespace bertprof
