/**
 * @file
 * End-to-end resume tests for the hardened training loop: a run
 * checkpointed at step k and restarted from that checkpoint must
 * continue bitwise-identically to the uninterrupted run — parameters,
 * optimizer moments, scaler state, step counters, and the sample
 * stream — at 1 thread and at 8 threads. Also covers checkpoint
 * cadence/pruning, resume-after-corruption fallback, config-mismatch
 * rejection, and preemption (kill@optim.step) via a death test.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/bertprof.h"
#include "runtime/config.h"

namespace bertprof {
namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "bp_resume_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

BertConfig
tinyConfig()
{
    BertConfig c;
    c.name = "bert-nano";
    c.numLayers = 1;
    c.dModel = 16;
    c.numHeads = 2;
    c.dFf = 32;
    c.vocabSize = 64;
    c.maxPositions = 16;
    c.batch = 2;
    c.seqLen = 8;
    c.maxPredictions = 2;
    return c;
}

/** A self-contained training run (identical construction each time). */
struct TrainRun {
    BertConfig config;
    NnRuntime rt;
    BertPretrainer model;
    SyntheticDataset dataset;
    Lamb lamb;
    GradScaler scaler;
    LrSchedule schedule;
    Trainer trainer;

    explicit TrainRun(TrainerOptions options)
        : config(tinyConfig()), rt(), model(config, &rt),
          dataset(config, 77), lamb(OptimizerConfig{}),
          scaler(1024.0f),
          schedule(1e-3f, 4, 40, DecayKind::Polynomial, 1.0),
          trainer(model, lamb, scaler, schedule, dataset, rt, options)
    {
        rt.dropoutP = 0.1f; // exercise the dropout RNG stream too
        Rng init(1234);
        model.initialize(init);
    }
};

bool
bitsEqual(const Tensor &a, const Tensor &b)
{
    return a.numel() == b.numel() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

void
expectRunsBitwiseEqual(TrainRun &a, TrainRun &b)
{
    auto pa = a.model.parameters();
    auto pb = b.model.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        EXPECT_TRUE(bitsEqual(pa[i]->value, pb[i]->value))
            << "parameter " << pa[i]->name << " diverged";
    EXPECT_EQ(a.trainer.iteration(), b.trainer.iteration());
    EXPECT_EQ(a.lamb.stepCount(), b.lamb.stepCount());
    EXPECT_EQ(a.scaler.scale(), b.scaler.scale());
    EXPECT_EQ(a.scaler.skippedSteps(), b.scaler.skippedSteps());
    // Both RNG streams must be at the same position.
    EXPECT_EQ(a.rt.rng.serialize(), b.rt.rng.serialize());
    EXPECT_EQ(a.dataset.rngState(), b.dataset.rngState());
}

/**
 * The core acceptance criterion: train 2k steps uninterrupted vs.
 * train k steps, tear the whole stack down, rebuild, resume from the
 * checkpoint at k, train to 2k — identical bits on every parameter,
 * counter, and RNG stream.
 */
void
resumeMatchesUninterrupted(int threads)
{
    setNumThreads(threads);
    const int k = 6;
    const std::string dir =
        freshDir("equiv_t" + std::to_string(threads));

    TrainerOptions options;
    options.checkpointEvery = k;
    options.checkpointDir = dir;

    // Uninterrupted: 2k steps in one process lifetime.
    TrainRun full(options);
    for (int i = 0; i < 2 * k; ++i)
        full.trainer.trainStep();

    // Interrupted: k steps, destruction (simulates the crash), then a
    // fresh stack resumes from the step-k checkpoint.
    const std::string dir2 =
        freshDir("equiv2_t" + std::to_string(threads));
    TrainerOptions options2 = options;
    options2.checkpointDir = dir2;
    {
        TrainRun first_half(options2);
        for (int i = 0; i < k; ++i)
            first_half.trainer.trainStep();
    }
    TrainRun resumed(options2);
    ASSERT_TRUE(resumed.trainer.resumeLatest().ok());
    EXPECT_EQ(resumed.trainer.iteration(), k);
    for (int i = 0; i < k; ++i)
        resumed.trainer.trainStep();

    expectRunsBitwiseEqual(full, resumed);

    // The step-2k checkpoint files are byte-identical too (the format
    // holds no timestamps), which is what scripts/check_resume.sh
    // verifies with cmp(1) from the outside.
    std::string payload_full, payload_resumed;
    std::int64_t step_full = 0, step_resumed = 0;
    CheckpointManagerOptions mgr_full, mgr_resumed;
    mgr_full.dir = dir;
    mgr_resumed.dir = dir2;
    ASSERT_TRUE(CheckpointManager(mgr_full)
                    .loadLatest(payload_full, step_full)
                    .ok());
    ASSERT_TRUE(CheckpointManager(mgr_resumed)
                    .loadLatest(payload_resumed, step_resumed)
                    .ok());
    EXPECT_EQ(step_full, 2 * k);
    EXPECT_EQ(step_resumed, 2 * k);
    EXPECT_EQ(payload_full, payload_resumed);
}

TEST(Resume, MatchesUninterruptedRunAtOneThread)
{
    resumeMatchesUninterrupted(1);
}

TEST(Resume, MatchesUninterruptedRunAtEightThreads)
{
    resumeMatchesUninterrupted(8);
}

TEST(Resume, ResumedDatasetConsumesTheIdenticalSampleStream)
{
    const std::string dir = freshDir("stream");
    TrainerOptions options;
    options.checkpointEvery = 3;
    options.checkpointDir = dir;

    TrainRun a(options);
    for (int i = 0; i < 3; ++i)
        a.trainer.trainStep();
    const PretrainBatch next_a = a.dataset.nextBatch();

    TrainRun b(options);
    ASSERT_TRUE(b.trainer.resumeLatest().ok());
    const PretrainBatch next_b = b.dataset.nextBatch();

    EXPECT_EQ(next_a.tokenIds, next_b.tokenIds);
    EXPECT_EQ(next_a.mlmPositions, next_b.mlmPositions);
    EXPECT_EQ(next_a.mlmLabels, next_b.mlmLabels);
    EXPECT_EQ(next_a.nspLabels, next_b.nspLabels);
}

TEST(Resume, CadenceAndPruningFollowTheOptions)
{
    const std::string dir = freshDir("cadence");
    TrainerOptions options;
    options.checkpointEvery = 2;
    options.checkpointDir = dir;
    options.keepLast = 2;

    TrainRun run(options);
    int saves = 0;
    for (int i = 0; i < 9; ++i) {
        const TrainStepResult r = run.trainer.trainStep();
        saves += r.checkpointSaved ? 1 : 0;
    }
    EXPECT_EQ(saves, 4); // after steps 2, 4, 6, 8

    CheckpointManagerOptions mgr;
    mgr.dir = dir;
    const auto steps = CheckpointManager(mgr).listSteps();
    ASSERT_EQ(steps.size(), 2u); // pruned to keepLast
    EXPECT_EQ(steps[0], 6);
    EXPECT_EQ(steps[1], 8);
}

TEST(Resume, FallsBackToLastGoodWhenNewestIsCorrupt)
{
    const std::string dir = freshDir("fallback");
    TrainerOptions options;
    options.checkpointEvery = 2;
    options.checkpointDir = dir;

    TrainRun a(options);
    for (int i = 0; i < 4; ++i)
        a.trainer.trainStep();

    // Truncate the step-4 checkpoint as a torn write would.
    CheckpointManagerOptions mgr;
    mgr.dir = dir;
    const std::string newest = CheckpointManager(mgr).pathForStep(4);
    fs::resize_file(newest, fs::file_size(newest) / 3);

    TrainRun b(options);
    ASSERT_TRUE(b.trainer.resumeLatest().ok());
    EXPECT_EQ(b.trainer.iteration(), 2); // last good, not the torn one
}

TEST(Resume, EmptyDirectoryReportsNotFound)
{
    TrainerOptions options;
    options.checkpointEvery = 2;
    options.checkpointDir = freshDir("empty");
    TrainRun run(options);
    EXPECT_EQ(run.trainer.resumeLatest().error, IoError::NotFound);
    EXPECT_EQ(run.trainer.iteration(), 0); // untouched, fresh start
}

TEST(Resume, ConfigMismatchIsRejected)
{
    const std::string dir = freshDir("config_mismatch");
    TrainerOptions options;
    options.checkpointEvery = 2;
    options.checkpointDir = dir;

    TrainRun a(options);
    for (int i = 0; i < 2; ++i)
        a.trainer.trainStep();

    // Same checkpoint directory, differently shaped model.
    BertConfig other = tinyConfig();
    other.dModel = 32;
    other.dFf = 64;
    NnRuntime rt;
    BertPretrainer model(other, &rt);
    Rng init(1234);
    model.initialize(init);
    SyntheticDataset dataset(other, 77);
    Lamb lamb((OptimizerConfig()));
    GradScaler scaler(1024.0f);
    LrSchedule schedule(1e-3f, 4, 40, DecayKind::Polynomial, 1.0);
    Trainer trainer(model, lamb, scaler, schedule, dataset, rt,
                    options);
    const IoStatus s = trainer.resumeLatest();
    EXPECT_EQ(s.error, IoError::BadFormat);
    EXPECT_NE(s.message.find("cfg.dmodel"), std::string::npos)
        << s.message;
}

TEST(Resume, OptimizerKindMismatchIsRejected)
{
    const std::string dir = freshDir("optim_mismatch");
    TrainerOptions options;
    options.checkpointEvery = 2;
    options.checkpointDir = dir;

    TrainRun a(options);
    for (int i = 0; i < 2; ++i)
        a.trainer.trainStep();

    // Same model shape, but the resuming stack runs Adam, not LAMB.
    BertConfig config = tinyConfig();
    NnRuntime rt;
    BertPretrainer model(config, &rt);
    Rng init(1234);
    model.initialize(init);
    SyntheticDataset dataset(config, 77);
    Adam adam((OptimizerConfig()));
    GradScaler scaler(1024.0f);
    LrSchedule schedule(1e-3f, 4, 40, DecayKind::Polynomial, 1.0);
    Trainer trainer(model, adam, scaler, schedule, dataset, rt,
                    options);
    const IoStatus s = trainer.resumeLatest();
    EXPECT_EQ(s.error, IoError::BadFormat);
    EXPECT_NE(s.message.find("lamb"), std::string::npos) << s.message;
}

// --------------------------------------------------------------------
// Preemption: kill@optim.step, then resume
// --------------------------------------------------------------------

/**
 * The injector's Kill executes std::_Exit(137) inside the optimizer
 * step. threadsafe death tests fork+exec, so the child re-runs this
 * test body with a clean thread pool and actually dies at step k+1;
 * the parent only checks the exit code.
 */
TEST(ResumeDeathTest, KillAtOptimizerStepThenResumeMatches)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const int k = 4;
    const std::string dir = ::testing::TempDir() + "bp_resume_kill";

    TrainerOptions options;
    options.checkpointEvery = k;
    options.checkpointDir = dir;

    EXPECT_EXIT(
        {
            // Child process: fresh directory, train until the armed
            // kill fires entering optimizer step k+1 (1-based).
            fs::remove_all(dir);
            fs::create_directories(dir);
            FaultInjector::instance().configure(
                "kill@optim.step:" + std::to_string(k + 1));
            TrainRun victim(options);
            for (int i = 0; i < 2 * k; ++i)
                victim.trainer.trainStep();
        },
        ::testing::ExitedWithCode(137), "");

    // Parent: the victim died after the step-k checkpoint; resume and
    // finish, then compare against an uninterrupted run.
    TrainRun resumed(options);
    ASSERT_TRUE(resumed.trainer.resumeLatest().ok());
    EXPECT_EQ(resumed.trainer.iteration(), k);
    while (resumed.trainer.iteration() < 2 * k)
        resumed.trainer.trainStep();

    TrainerOptions options_full = options;
    options_full.checkpointDir = freshDir("kill_full");
    TrainRun full(options_full);
    for (int i = 0; i < 2 * k; ++i)
        full.trainer.trainStep();

    expectRunsBitwiseEqual(full, resumed);
    fs::remove_all(dir);
}

} // namespace
} // namespace bertprof
