/** Small coverage-gap tests: weight tying, trace taxonomy coverage,
 *  Phase-2 shapes, and remaining utility paths. */

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/bert_pretrainer.h"
#include "test_helpers.h"
#include "trace/bert_trace_builder.h"
#include "util/rng.h"

namespace bertprof {
namespace {

using testing::tinyBertConfig;

TEST(WeightTying, MlmDecoderGradFlowsIntoTokenEmbedding)
{
    // The MLM decoder weight is tied to the token embedding table:
    // its weight gradient must land in tokenEmbedding().grad in
    // addition to the embedding scatter contribution.
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init(3);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 4);
    const PretrainBatch batch = dataset.nextBatch();

    trainer.zeroGrad();
    trainer.forwardBackward(batch);

    // Rows for vocabulary ids that never appear as *input tokens*
    // still receive gradient through the decoder (softmax pushes
    // down every logit). Find such an id.
    std::set<std::int64_t> used(batch.tokenIds.begin(),
                                batch.tokenIds.end());
    std::int64_t unused_id = -1;
    for (std::int64_t v = 4; v < config.vocabSize; ++v) {
        if (!used.count(v)) {
            unused_id = v;
            break;
        }
    }
    ASSERT_GE(unused_id, 0);
    Parameter &table = trainer.model().tokenEmbedding();
    double row_norm = 0.0;
    for (std::int64_t c = 0; c < config.dModel; ++c) {
        const float g = table.grad.at(unused_id * config.dModel + c);
        row_norm += static_cast<double>(g) * g;
    }
    EXPECT_GT(row_norm, 0.0)
        << "tied decoder gradient missing for unused token row";
}

TEST(TraceCoverage, PretrainIterationTouchesEverySubLayerGroup)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 8));
    const OpTrace trace = builder.buildIteration();
    std::set<SubLayer> seen;
    for (const auto &op : trace.ops)
        seen.insert(op.sub);
    for (SubLayer sub :
         {SubLayer::AttnLinear, SubLayer::AttnBGemm,
          SubLayer::AttnScaleMaskDrSm, SubLayer::FcGemm,
          SubLayer::FcGelu, SubLayer::DrRcLn, SubLayer::EmbeddingOps,
          SubLayer::OutputOps, SubLayer::LambStage1,
          SubLayer::LambStage2, SubLayer::GradNorm}) {
        EXPECT_TRUE(seen.count(sub)) << subLayerName(sub);
    }
    // AllReduce only appears in distributed traces.
    EXPECT_FALSE(seen.count(SubLayer::AllReduce));
}

TEST(TraceCoverage, Phase2ShapesScaleWithSequenceLength)
{
    const BertConfig ph2 = withPhase2(bertLarge(), 4);
    BertTraceBuilder builder(ph2);
    const OpTrace trace = builder.buildForward();
    for (const auto &op : trace.ops) {
        if (op.name == "enc0.attn.score.fwd") {
            EXPECT_EQ(op.gemm.m, 512);
            EXPECT_EQ(op.gemm.n, 512);
            EXPECT_EQ(op.gemm.batch, 4 * 16);
        }
        if (op.name == "enc0.fc1.fwd") {
            EXPECT_EQ(op.gemm.n, ph2.tokens());
        }
    }
}

TEST(OpTraceSelect, FiltersByPredicate)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 4));
    const OpTrace trace = builder.buildIteration();
    const auto gemms = trace.select([](const OpDesc &op) {
        return op.kind == OpKind::Gemm;
    });
    EXPECT_FALSE(gemms.empty());
    for (const OpDesc *op : gemms)
        EXPECT_EQ(op->kind, OpKind::Gemm);
    const auto none = trace.select(
        [](const OpDesc &op) { return op.layerIndex > 10000; });
    EXPECT_TRUE(none.empty());
}

TEST(TensorFill, UniformStaysInRange)
{
    Rng rng(9);
    Tensor t(Shape({10000}));
    t.fillUniform(rng, -2.0f, 3.0f);
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        EXPECT_GE(t.at(i), -2.0f);
        EXPECT_LT(t.at(i), 3.0f);
    }
    // Mean near the midpoint of the range.
    EXPECT_NEAR(t.sum() / t.numel(), 0.5, 0.1);
}

TEST(GemmDimsLabel, MatchesPaperFormat)
{
    GemmDims dims{true, false, 64, 128, 256, 1};
    EXPECT_EQ(dims.label(), "TN,64,128,256");
    dims.batch = 512;
    EXPECT_EQ(dims.label(), "TN,64,128,256,[512]");
    EXPECT_EQ(dims.flops(), 2LL * 64 * 128 * 256 * 512);
}

} // namespace
} // namespace bertprof
