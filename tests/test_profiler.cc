/** Tests for the runtime profiler. */

#include <thread>

#include <gtest/gtest.h>

#include "runtime/profiler.h"
#include "util/table.h"

namespace bertprof {
namespace {

TEST(Profiler, ScopedKernelRecordsOnDestruction)
{
    Profiler profiler;
    {
        ScopedKernel k(&profiler, "k1", OpKind::Gemm, Phase::Fwd,
                       LayerScope::Transformer, SubLayer::FcGemm);
        k.setStats(gemmStats(4, 4, 4));
    }
    ASSERT_EQ(profiler.records().size(), 1u);
    const auto &rec = profiler.records()[0];
    EXPECT_EQ(rec.name, "k1");
    EXPECT_EQ(rec.kind, OpKind::Gemm);
    EXPECT_EQ(rec.stats.flops, 2 * 4 * 4 * 4);
    EXPECT_GE(rec.seconds, 0.0);
}

TEST(Profiler, NullProfilerIsNoOp)
{
    ScopedKernel k(nullptr, "ignored", OpKind::Elementwise, Phase::Bwd,
                   LayerScope::Output, SubLayer::Other);
    k.setStats(elementwiseStats(8));
    // Nothing to assert beyond "does not crash".
}

TEST(Profiler, TimesAreMonotonicallyPositive)
{
    Profiler profiler;
    {
        ScopedKernel k(&profiler, "sleepy", OpKind::Elementwise,
                       Phase::Fwd, LayerScope::Transformer,
                       SubLayer::Other);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(profiler.records()[0].seconds, 0.001);
    EXPECT_GE(profiler.totalSeconds(), 0.001);
}

TEST(Profiler, AggregatesByTaxonomy)
{
    Profiler profiler;
    auto emit = [&](const char *name, Phase phase, LayerScope scope,
                    SubLayer sub) {
        ScopedKernel k(&profiler, name, OpKind::Elementwise, phase, scope,
                       sub);
        k.setStats(elementwiseStats(100));
    };
    emit("a", Phase::Fwd, LayerScope::Transformer, SubLayer::FcGelu);
    emit("b", Phase::Bwd, LayerScope::Transformer, SubLayer::FcGelu);
    emit("c", Phase::Update, LayerScope::Optimizer,
         SubLayer::LambStage1);

    const auto by_scope = profiler.byScope();
    EXPECT_EQ(by_scope.at("Transformer").kernelCount, 2);
    EXPECT_EQ(by_scope.at("Optimizer").kernelCount, 1);

    const auto by_phase = profiler.byPhase();
    EXPECT_EQ(by_phase.at("FWD").kernelCount, 1);
    EXPECT_EQ(by_phase.at("BWD").kernelCount, 1);
    EXPECT_EQ(by_phase.at("UPDATE").kernelCount, 1);

    const auto by_sub = profiler.bySubLayer();
    EXPECT_EQ(by_sub.at("GeLU").stats.flops, 200);
}

TEST(Profiler, ClearResetsRecords)
{
    Profiler profiler;
    {
        ScopedKernel k(&profiler, "x", OpKind::Elementwise, Phase::Fwd,
                       LayerScope::Embedding, SubLayer::EmbeddingOps);
    }
    EXPECT_EQ(profiler.records().size(), 1u);
    profiler.clear();
    EXPECT_TRUE(profiler.records().empty());
    EXPECT_EQ(profiler.totalSeconds(), 0.0);
}

TEST(Profiler, RenderBreakdownHasOneRowPerGroup)
{
    Profiler profiler;
    for (int i = 0; i < 3; ++i) {
        ScopedKernel k(&profiler, "k", OpKind::Elementwise, Phase::Fwd,
                       i == 0 ? LayerScope::Embedding
                              : LayerScope::Transformer,
                       SubLayer::Other);
        k.setStats(elementwiseStats(10));
    }
    const Table table = Profiler::renderBreakdown(
        profiler.byScope(), profiler.totalSeconds(), "test");
    EXPECT_EQ(table.rowCount(), 2u);
}

} // namespace
} // namespace bertprof
