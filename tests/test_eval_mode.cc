/**
 * @file
 * Forward-only (eval) execution mode: setTraining propagates through
 * the module tree, eval forwards are bitwise deterministic across
 * repeated calls and thread counts, never touch the dropout RNG
 * stream, match a p=0 training forward exactly, and leave no state a
 * backward pass could silently consume.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "nn/bert_classifier.h"
#include "nn/bert_pretrainer.h"
#include "runtime/config.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using ::bertprof::testing::tinyBertConfig;

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    if (!(a.shape() == b.shape()))
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

/** Flat [batch*seq] ids for a full-length batch. */
void
makeIds(const BertConfig &config, std::vector<std::int64_t> &tokens,
        std::vector<std::int64_t> &segments, std::uint64_t seed)
{
    Rng rng(seed);
    const auto n = static_cast<std::size_t>(config.tokens());
    tokens.resize(n);
    segments.assign(n, 0);
    for (auto &t : tokens)
        t = rng.uniformInt(4, config.vocabSize - 1);
}

TEST(EvalMode, SetTrainingPropagatesThroughTree)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    EXPECT_TRUE(clf.isTraining());
    clf.setTraining(false);
    EXPECT_FALSE(clf.isTraining());
    // Propagation is observable at the leaves: a direct eval forward
    // on the inner BertModel is only legal when the flag reached it.
    EXPECT_FALSE(clf.model().isTraining());
    clf.setTraining(true);
    EXPECT_TRUE(clf.model().isTraining());
}

TEST(EvalMode, RepeatedEvalForwardsAreBitwiseIdentical)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.1f;
    BertClassifier clf(config, &rt);
    Rng init(11);
    clf.initialize(init);
    clf.setTraining(false);

    std::vector<std::int64_t> tokens, segments;
    makeIds(config, tokens, segments, 21);
    Tensor a = clf.forwardLogitsEval(tokens, segments, config.batch,
                                     config.seqLen, {});
    Tensor b = clf.forwardLogitsEval(tokens, segments, config.batch,
                                     config.seqLen, {});
    EXPECT_TRUE(bitwiseEqual(a, b));
}

TEST(EvalMode, EvalForwardLeavesRngStreamUntouched)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.1f; // a training forward WOULD draw from the rng
    BertClassifier clf(config, &rt);
    Rng init(12);
    clf.initialize(init);
    clf.setTraining(false);

    std::vector<std::int64_t> tokens, segments;
    makeIds(config, tokens, segments, 22);
    const std::string before = rt.rng.serialize();
    (void)clf.forwardLogitsEval(tokens, segments, config.batch,
                                config.seqLen, {});
    EXPECT_EQ(before, rt.rng.serialize());
}

TEST(EvalMode, EvalMatchesTrainingForwardWithZeroDropout)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertModel model(config, &rt);
    Rng init(13);
    model.initialize(init);

    std::vector<std::int64_t> tokens, segments;
    makeIds(config, tokens, segments, 23);
    Tensor trained = model.forward(tokens, segments);
    model.setTraining(false);
    Tensor evaled = model.forwardEval(tokens, segments, config.batch,
                                      config.seqLen, {});
    EXPECT_TRUE(bitwiseEqual(trained, evaled));
}

TEST(EvalMode, EvalForwardIsThreadCountInvariant)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(14);
    clf.initialize(init);
    clf.setTraining(false);

    std::vector<std::int64_t> tokens, segments;
    makeIds(config, tokens, segments, 24);
    setNumThreads(1);
    Tensor serial = clf.forwardLogitsEval(tokens, segments, config.batch,
                                          config.seqLen, {});
    setNumThreads(8);
    Tensor parallel = clf.forwardLogitsEval(tokens, segments,
                                            config.batch, config.seqLen,
                                            {});
    setNumThreads(0); // back to the environment default
    EXPECT_TRUE(bitwiseEqual(serial, parallel));
}

TEST(EvalMode, DynamicShapesSmallerThanConfigWork)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(15);
    clf.initialize(init);
    clf.setTraining(false);

    // One sequence at an off-config shape (batch 3, seq 8 != 2x16).
    const std::int64_t batch = 3, seq = 8;
    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(batch * seq), 7);
    std::vector<std::int64_t> segments(tokens.size(), 0);
    Tensor logits = clf.forwardLogitsEval(tokens, segments, batch, seq,
                                          {seq, seq / 2, seq});
    EXPECT_EQ(logits.shape(), Shape({batch, config.numClasses}));
}

TEST(EvalMode, MlmEvalLogitsMatchConfigShape)
{
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertPretrainer pretrainer(config, &rt);
    Rng init(16);
    pretrainer.initialize(init);
    pretrainer.setTraining(false);

    const std::int64_t batch = 2, seq = 8;
    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(batch * seq), 9);
    std::vector<std::int64_t> segments(tokens.size(), 0);
    const std::vector<std::int64_t> positions = {1, 3, seq + 2};
    Tensor logits = pretrainer.mlmLogitsEval(tokens, segments, batch, seq,
                                             {}, positions);
    EXPECT_EQ(logits.shape(),
              Shape({static_cast<std::int64_t>(positions.size()),
                     config.vocabSize}));
    // Repeatable bitwise, like every eval path.
    Tensor again = pretrainer.mlmLogitsEval(tokens, segments, batch, seq,
                                            {}, positions);
    EXPECT_TRUE(bitwiseEqual(logits, again));
}

TEST(EvalModeDeath, BackwardAfterEvalForwardDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    Rng init(17);
    model.initialize(init);
    model.setTraining(false);

    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(config.tokens()), 5);
    std::vector<std::int64_t> segments(tokens.size(), 0);
    Tensor hidden = model.forwardEval(tokens, segments, config.batch,
                                      config.seqLen, {});
    Tensor dhidden(hidden.shape());
    dhidden.fill(1.0f);
    // The eval forward retained nothing; the backward contract check
    // on the (empty) embedding dropout mask must kill the process
    // instead of silently consuming stale state.
    EXPECT_EXIT(model.backward(dhidden), ::testing::ExitedWithCode(1),
                "contract failed");
}

TEST(EvalModeDeath, ForwardEvalInTrainingModeDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertModel model(config, &rt);
    Rng init(18);
    model.initialize(init);

    std::vector<std::int64_t> tokens(
        static_cast<std::size_t>(config.tokens()), 5);
    std::vector<std::int64_t> segments(tokens.size(), 0);
    EXPECT_EXIT((void)model.forwardEval(tokens, segments, config.batch,
                                        config.seqLen, {}),
                ::testing::ExitedWithCode(1), "requirement failed");
}

} // namespace
} // namespace bertprof
