/** Tests for SGD, Adam, and LAMB. */

#include <cmath>

#include <gtest/gtest.h>

#include "optim/adam.h"
#include "optim/lamb.h"
#include "optim/sgd.h"

namespace bertprof {
namespace {

Parameter
makeParam(const std::string &name, std::vector<float> w,
          std::vector<float> g, bool no_decay = false)
{
    Parameter param(name,
                    Shape({static_cast<std::int64_t>(w.size())}),
                    no_decay);
    for (std::size_t i = 0; i < w.size(); ++i) {
        param.value.at(static_cast<std::int64_t>(i)) = w[i];
        param.grad.at(static_cast<std::int64_t>(i)) = g[i];
    }
    return param;
}

TEST(Sgd, PlainStep)
{
    Parameter p = makeParam("w", {1.0f, 2.0f}, {0.5f, -0.5f});
    OptimizerConfig config;
    config.learningRate = 0.1f;
    Sgd sgd(config);
    sgd.step({&p});
    EXPECT_NEAR(p.value.at(0), 0.95f, 1e-6f);
    EXPECT_NEAR(p.value.at(1), 2.05f, 1e-6f);
    EXPECT_EQ(sgd.stepCount(), 1);
}

TEST(Sgd, MomentumAccumulates)
{
    Parameter p = makeParam("w", {0.0f}, {1.0f});
    OptimizerConfig config;
    config.learningRate = 1.0f;
    Sgd sgd(config, /*momentum=*/0.9f);
    sgd.step({&p});
    EXPECT_NEAR(p.value.at(0), -1.0f, 1e-6f); // v = 1
    sgd.step({&p});
    EXPECT_NEAR(p.value.at(0), -2.9f, 1e-6f); // v = 0.9 + 1
}

TEST(Sgd, GradClippingScalesUpdate)
{
    Parameter p = makeParam("w", {0.0f}, {30.0f});
    OptimizerConfig config;
    config.learningRate = 1.0f;
    config.maxGradNorm = 3.0f;
    Sgd sgd(config);
    sgd.step({&p});
    EXPECT_NEAR(p.value.at(0), -3.0f, 1e-5f);
}

/** Reference Adam step in double precision. */
void
referenceAdam(std::vector<double> &w, const std::vector<double> &g,
              std::vector<double> &m, std::vector<double> &v, int t,
              double lr, double b1, double b2, double eps, double wd)
{
    for (std::size_t i = 0; i < w.size(); ++i) {
        m[i] = b1 * m[i] + (1 - b1) * g[i];
        v[i] = b2 * v[i] + (1 - b2) * g[i] * g[i];
        const double mhat = m[i] / (1 - std::pow(b1, t));
        const double vhat = v[i] / (1 - std::pow(b2, t));
        const double update = mhat / (std::sqrt(vhat) + eps) + wd * w[i];
        w[i] -= lr * update;
    }
}

TEST(Adam, MatchesReferenceOverThreeSteps)
{
    Parameter p = makeParam("w", {0.3f, -0.7f, 1.1f}, {0, 0, 0});
    OptimizerConfig config;
    config.learningRate = 0.01f;
    config.weightDecay = 0.1f;
    Adam adam(config);

    std::vector<double> w = {0.3, -0.7, 1.1};
    std::vector<double> m(3, 0.0), v(3, 0.0);
    const std::vector<std::vector<double>> grads = {
        {0.1, -0.2, 0.3}, {-0.4, 0.5, 0.1}, {0.2, 0.2, -0.2}};

    for (int t = 0; t < 3; ++t) {
        for (int i = 0; i < 3; ++i)
            p.grad.at(i) = static_cast<float>(grads[t][i]);
        adam.step({&p});
        referenceAdam(w, grads[static_cast<std::size_t>(t)], m, v, t + 1,
                      config.learningRate, config.beta1, config.beta2,
                      config.epsilon, config.weightDecay);
        for (int i = 0; i < 3; ++i)
            EXPECT_NEAR(p.value.at(i), w[static_cast<std::size_t>(i)],
                        1e-5);
    }
}

TEST(Adam, NoDecayParameterSkipsWeightDecay)
{
    Parameter decayed = makeParam("w", {1.0f}, {0.0f});
    Parameter no_decay = makeParam("b", {1.0f}, {0.0f}, true);
    OptimizerConfig config;
    config.learningRate = 0.1f;
    config.weightDecay = 0.5f;
    Adam adam(config);
    adam.step({&decayed, &no_decay});
    EXPECT_LT(decayed.value.at(0), 1.0f); // decayed toward zero
    EXPECT_FLOAT_EQ(no_decay.value.at(0), 1.0f);
}

TEST(Lamb, TrustRatioIsWeightNormOverUpdateNorm)
{
    Parameter p = makeParam("w", {3.0f, 4.0f}, {0.1f, 0.1f});
    OptimizerConfig config;
    config.learningRate = 0.0f; // isolate trust-ratio computation
    config.weightDecay = 0.0f;
    Lamb lamb(config);
    lamb.step({&p});
    // ||w|| = 5; update ~= sign-ish direction m/(sqrt(v)+eps).
    const double trust = lamb.lastTrustRatio(&p);
    EXPECT_GT(trust, 0.0);
    // update_i ~= 1 for each element after bias correction, so
    // ||u|| ~= sqrt(2) and trust ~= 5 / sqrt(2).
    EXPECT_NEAR(trust, 5.0 / std::sqrt(2.0), 0.1);
}

TEST(Lamb, StepMovesAgainstGradient)
{
    Parameter p = makeParam("w", {1.0f, -1.0f}, {0.5f, -0.5f});
    OptimizerConfig config;
    config.learningRate = 0.01f;
    config.weightDecay = 0.0f;
    Lamb lamb(config);
    const float before0 = p.value.at(0);
    const float before1 = p.value.at(1);
    lamb.step({&p});
    EXPECT_LT(p.value.at(0), before0);
    EXPECT_GT(p.value.at(1), before1);
}

TEST(Lamb, ZeroGradientLeavesWeightsAlmostStill)
{
    Parameter p = makeParam("w", {2.0f}, {0.0f});
    OptimizerConfig config;
    config.learningRate = 0.1f;
    config.weightDecay = 0.0f;
    Lamb lamb(config);
    lamb.step({&p});
    EXPECT_NEAR(p.value.at(0), 2.0f, 1e-6f);
}

TEST(Lamb, GlobalNormSerializationUsesAllGradients)
{
    // With clipping, one huge gradient scales down all updates.
    Parameter small = makeParam("a", {0.0f}, {0.001f});
    Parameter huge = makeParam("b", {0.0f}, {1000.0f});
    OptimizerConfig config;
    config.learningRate = 0.1f;
    config.maxGradNorm = 1.0f;
    config.weightDecay = 0.0f;
    Lamb with_clip(config);
    with_clip.step({&small, &huge});

    Parameter small2 = makeParam("a", {0.0f}, {0.001f});
    OptimizerConfig no_clip = config;
    no_clip.maxGradNorm = 0.0f;
    Lamb without(no_clip);
    without.step({&small2});
    // The small parameter's effective gradient differs between runs
    // because the *other* tensor's norm dominated the global norm.
    EXPECT_NE(small.value.at(0), small2.value.at(0));
}

TEST(Lamb, ConvergesOnQuadraticBowl)
{
    // Minimize f(w) = 0.5 * ||w - target||^2.
    Parameter p("w", Shape({4}));
    const float target[4] = {1.0f, -2.0f, 0.5f, 3.0f};
    OptimizerConfig config;
    config.learningRate = 0.05f;
    config.weightDecay = 0.0f;
    Lamb lamb(config);
    for (int it = 0; it < 300; ++it) {
        for (int i = 0; i < 4; ++i)
            p.grad.at(i) = p.value.at(i) - target[i];
        lamb.step({&p});
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(p.value.at(i), target[i], 0.2f);
}

TEST(Optimizers, ProfilerSeesTwoStagesPerTensor)
{
    Profiler profiler;
    Parameter a = makeParam("a", {1.0f}, {0.1f});
    Parameter b = makeParam("b", {1.0f}, {0.1f});
    OptimizerConfig config;
    Lamb lamb(config, &profiler);
    lamb.step({&a, &b});
    // grad-norm + 2 tensors x (stage1 + stage2).
    EXPECT_EQ(profiler.records().size(), 5u);
    const auto by_sub = profiler.bySubLayer();
    EXPECT_EQ(by_sub.at("LAMB stage 1").kernelCount, 2);
    EXPECT_EQ(by_sub.at("LAMB stage 2").kernelCount, 2);
    EXPECT_EQ(by_sub.at("Grad L2 norm").kernelCount, 1);
}

TEST(Optimizers, LearningRateCanBeAdjusted)
{
    Parameter p = makeParam("w", {0.0f}, {1.0f});
    OptimizerConfig config;
    config.learningRate = 0.0f;
    Sgd sgd(config);
    sgd.step({&p});
    EXPECT_FLOAT_EQ(p.value.at(0), 0.0f);
    sgd.setLearningRate(1.0f);
    sgd.step({&p});
    EXPECT_FLOAT_EQ(p.value.at(0), -1.0f);
}

} // namespace
} // namespace bertprof
