/** Tests for the trace export (CSV and Chrome trace JSON). */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/trace_export.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

TimedTrace
smallTimedTrace()
{
    Characterizer characterizer(mi100());
    return characterizer.run(withPhase1(testing::tinyBertConfig(), 2))
        .timed;
}

TEST(TraceExport, CsvHasOneRowPerKernel)
{
    const TimedTrace timed = smallTimedTrace();
    const CsvWriter csv = traceToCsv(timed);
    const std::string text = csv.render();
    // Header + one line per kernel.
    const auto lines =
        static_cast<std::size_t>(std::count(text.begin(), text.end(),
                                            '\n'));
    EXPECT_EQ(lines, timed.ops.size() + 1);
    EXPECT_NE(text.find("ops_per_byte"), std::string::npos);
}

TEST(TraceExport, CsvContainsDimsAndTimes)
{
    const TimedTrace timed = smallTimedTrace();
    const std::string text = traceToCsv(timed).render();
    EXPECT_NE(text.find("enc0.fc1.fwd"), std::string::npos);
    EXPECT_NE(text.find("UPDATE"), std::string::npos);
    EXPECT_NE(text.find("NT,"), std::string::npos); // GEMM dims label
}

TEST(TraceExport, CsvRoundTripsThroughFile)
{
    const TimedTrace timed = smallTimedTrace();
    const std::string path = ::testing::TempDir() + "bp_trace_test.csv";
    ASSERT_TRUE(writeTraceCsv(timed, path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), traceToCsv(timed).render());
    std::remove(path.c_str());
}

TEST(TraceExport, ChromeJsonIsWellFormedEnough)
{
    const TimedTrace timed = smallTimedTrace();
    const std::string json = traceToChromeJson(timed);
    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    EXPECT_EQ(json.back(), '}');
    // One complete event per kernel.
    std::size_t events = 0;
    for (std::size_t pos = 0;
         (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
         ++pos)
        ++events;
    EXPECT_EQ(events, timed.ops.size());
    // Balanced braces.
    const auto opens = std::count(json.begin(), json.end(), '{');
    const auto closes = std::count(json.begin(), json.end(), '}');
    EXPECT_EQ(opens, closes);
}

TEST(TraceExport, ChromeJsonTimestampsAreMonotone)
{
    const TimedTrace timed = smallTimedTrace();
    const std::string json = traceToChromeJson(timed);
    double prev = -1.0;
    for (std::size_t pos = 0;
         (pos = json.find("\"ts\":", pos)) != std::string::npos;
         ++pos) {
        const double ts = std::atof(json.c_str() + pos + 5);
        EXPECT_GE(ts, prev);
        prev = ts;
    }
}

TEST(TraceExport, ChromeJsonSeparatesPhasesIntoTracks)
{
    const TimedTrace timed = smallTimedTrace();
    const std::string json = traceToChromeJson(timed);
    EXPECT_NE(json.find("\"tid\":0"), std::string::npos); // FWD
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos); // BWD
    EXPECT_NE(json.find("\"tid\":3"), std::string::npos); // UPDATE
}

} // namespace
} // namespace bertprof
