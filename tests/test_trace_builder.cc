/**
 * Tests for the BERT trace builder: exact Table 2b shapes, kernel
 * counts, FLOP accounting, checkpointing, fusion variants, and
 * parameterized invariants across configurations.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

/** Find the single op whose name ends with `suffix` in layer 0. */
const OpDesc &
findLayer0(const OpTrace &trace, const std::string &suffix)
{
    const OpDesc *found = nullptr;
    for (const auto &op : trace.ops) {
        if (op.layerIndex != 0)
            continue;
        if (op.name.size() >= suffix.size() &&
            op.name.compare(op.name.size() - suffix.size(), suffix.size(),
                            suffix) == 0) {
            EXPECT_EQ(found, nullptr) << "duplicate " << suffix;
            found = &op;
        }
    }
    EXPECT_NE(found, nullptr) << "missing " << suffix;
    return *found;
}

TEST(TraceBuilder, Table2bForwardShapes)
{
    const BertConfig c = withPhase1(bertLarge(), 32);
    BertTraceBuilder builder(c);
    const OpTrace trace = builder.buildIteration();
    const std::int64_t d = c.dModel, t = c.tokens(), f = c.dFf;
    const std::int64_t n = c.seqLen, dh = c.headDim();
    const std::int64_t bh = c.batch * c.numHeads;

    // Linear: d_model x n*B x d_model.
    const auto &q = findLayer0(trace, "attn.q.fwd");
    EXPECT_EQ(q.gemm.m, d);
    EXPECT_EQ(q.gemm.n, t);
    EXPECT_EQ(q.gemm.k, d);
    // Attn Score: n x n x d/h, batch B*h.
    const auto &score = findLayer0(trace, "attn.score.fwd");
    EXPECT_EQ(score.gemm.m, n);
    EXPECT_EQ(score.gemm.n, n);
    EXPECT_EQ(score.gemm.k, dh);
    EXPECT_EQ(score.gemm.batch, bh);
    // Attn O/p: d/h x n x n, batch B*h.
    const auto &ctx = findLayer0(trace, "attn.context.fwd");
    EXPECT_EQ(ctx.gemm.m, dh);
    EXPECT_EQ(ctx.gemm.n, n);
    EXPECT_EQ(ctx.gemm.k, n);
    EXPECT_EQ(ctx.gemm.batch, bh);
    // FC-1: d_ff x n*B x d_model; FC-2: d_model x n*B x d_ff.
    const auto &fc1 = findLayer0(trace, "fc1.fwd");
    EXPECT_EQ(fc1.gemm.m, f);
    EXPECT_EQ(fc1.gemm.n, t);
    EXPECT_EQ(fc1.gemm.k, d);
    const auto &fc2 = findLayer0(trace, "fc2.fwd");
    EXPECT_EQ(fc2.gemm.m, d);
    EXPECT_EQ(fc2.gemm.n, t);
    EXPECT_EQ(fc2.gemm.k, f);
}

TEST(TraceBuilder, Table2bBackwardShapes)
{
    const BertConfig c = withPhase1(bertLarge(), 32);
    BertTraceBuilder builder(c);
    const OpTrace trace = builder.buildIteration();
    const std::int64_t d = c.dModel, t = c.tokens(), f = c.dFf;

    // Linear BWD grad-activation d x n*B x d; grad-weight d x d x n*B.
    const auto &dgrad = findLayer0(trace, "attn.q.dgrad");
    EXPECT_EQ(dgrad.gemm.m, d);
    EXPECT_EQ(dgrad.gemm.n, t);
    EXPECT_EQ(dgrad.gemm.k, d);
    const auto &wgrad = findLayer0(trace, "attn.q.wgrad");
    EXPECT_EQ(wgrad.gemm.m, d);
    EXPECT_EQ(wgrad.gemm.n, d);
    EXPECT_EQ(wgrad.gemm.k, t);
    // FC-1 BWD: d x n*B x d_ff and d x d_ff x n*B.
    const auto &fc1_d = findLayer0(trace, "fc1.dgrad");
    EXPECT_EQ(fc1_d.gemm.m, d);
    EXPECT_EQ(fc1_d.gemm.n, t);
    EXPECT_EQ(fc1_d.gemm.k, f);
    const auto &fc1_w = findLayer0(trace, "fc1.wgrad");
    EXPECT_EQ(fc1_w.gemm.m, d);
    EXPECT_EQ(fc1_w.gemm.n, f);
    EXPECT_EQ(fc1_w.gemm.k, t);
}

TEST(TraceBuilder, EveryGemmHasTwoBackwardGemms)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 8));
    const OpTrace trace = builder.buildIteration();
    std::int64_t fwd_gemms = 0, bwd_gemms = 0;
    for (const auto &op : trace.ops) {
        if (op.kind != OpKind::Gemm && op.kind != OpKind::BatchedGemm)
            continue;
        if (op.scope != LayerScope::Transformer)
            continue;
        if (op.phase == Phase::Fwd)
            ++fwd_gemms;
        else if (op.phase == Phase::Bwd)
            ++bwd_gemms;
    }
    EXPECT_EQ(bwd_gemms, 2 * fwd_gemms);
}

TEST(TraceBuilder, BackwardGemmFlopsAreTwiceForward)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 8));
    const OpTrace trace = builder.buildIteration();
    std::int64_t fwd = 0, bwd = 0;
    for (const auto &op : trace.ops) {
        if (op.scope != LayerScope::Transformer)
            continue;
        if (op.kind != OpKind::Gemm && op.kind != OpKind::BatchedGemm)
            continue;
        if (op.phase == Phase::Fwd)
            fwd += op.stats.flops;
        else
            bwd += op.stats.flops;
    }
    EXPECT_EQ(bwd, 2 * fwd);
}

TEST(TraceBuilder, LambStage1ReadsFourTimesModelSize)
{
    const BertConfig c = withPhase1(bertLarge(), 32);
    BertTraceBuilder builder(c);
    const OpTrace update = builder.buildUpdate();
    std::int64_t stage1_read = 0;
    for (const auto &op : update.ops)
        if (op.sub == SubLayer::LambStage1)
            stage1_read += op.stats.bytesRead;
    EXPECT_EQ(stage1_read, c.parameterCount() * 4 * 4);
}

TEST(TraceBuilder, LambKernelsAreFp32EvenUnderMixedPrecision)
{
    BertConfig c = withPhase1(bertLarge(), 32);
    c.precision = Precision::Mixed;
    BertTraceBuilder builder(c);
    for (const auto &op : builder.buildUpdate().ops)
        EXPECT_EQ(op.dtype, DType::F32) << op.name;
    // ... while forward GEMMs are FP16.
    for (const auto &op : builder.buildForward().ops) {
        if (op.kind == OpKind::Gemm) {
            EXPECT_EQ(op.dtype, DType::F16) << op.name;
        }
    }
}

TEST(TraceBuilder, LambUpdateHasGradNormBeforeAnyStage)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 32));
    const OpTrace update = builder.buildUpdate();
    ASSERT_FALSE(update.ops.empty());
    EXPECT_EQ(update.ops.front().sub, SubLayer::GradNorm);
}

TEST(TraceBuilder, AdamUpdateHasNoGradNorm)
{
    BertConfig c = withPhase1(bertLarge(), 32);
    c.optimizer = OptimizerKind::Adam;
    BertTraceBuilder builder(c);
    for (const auto &op : builder.buildUpdate().ops)
        EXPECT_NE(op.sub, SubLayer::GradNorm);
}

TEST(TraceBuilder, CheckpointingAddsRecomputeKernels)
{
    BertConfig base = withPhase1(bertLarge(), 32);
    BertConfig ckpt = base;
    ckpt.checkpointEvery = 6;
    const auto base_trace = BertTraceBuilder(base).buildIteration();
    const auto ckpt_trace = BertTraceBuilder(ckpt).buildIteration();

    std::int64_t recompute = 0;
    for (const auto &op : ckpt_trace.ops)
        recompute += op.phase == Phase::Recompute ? 1 : 0;
    EXPECT_GT(recompute, 0);
    // Every layer's forward is re-emitted exactly once.
    std::int64_t fwd_per_layer = 0;
    for (const auto &op : base_trace.ops)
        if (op.layerIndex == 0 && op.phase == Phase::Fwd)
            ++fwd_per_layer;
    EXPECT_EQ(recompute, fwd_per_layer * ckpt.numLayers);
    // Kernel count grows by roughly a third (paper: ~+33%).
    const double growth =
        static_cast<double>(ckpt_trace.size()) / base_trace.size();
    EXPECT_GT(growth, 1.2);
    EXPECT_LT(growth, 1.45);
}

TEST(TraceBuilder, FusionOptionsReduceKernelCounts)
{
    const BertConfig c = withPhase1(bertLarge(), 8);
    const auto plain = BertTraceBuilder(c).buildIteration();

    TraceOptions fuse_gelu;
    fuse_gelu.fuseGelu = true;
    const auto gelu_fused = BertTraceBuilder(c, fuse_gelu).buildIteration();
    // 5 fwd + 4 bwd kernels collapse to 1 + 1 per layer.
    EXPECT_EQ(plain.size() - gelu_fused.size(),
              static_cast<std::size_t>(7 * c.numLayers));

    TraceOptions fuse_qkv;
    fuse_qkv.fuseQkvGemm = true;
    const auto qkv_fused = BertTraceBuilder(c, fuse_qkv).buildIteration();
    EXPECT_LT(qkv_fused.size(), plain.size());

    TraceOptions fuse_smds;
    fuse_smds.fuseScaleMaskDrSm = true;
    const auto smds = BertTraceBuilder(c, fuse_smds).buildIteration();
    EXPECT_LT(smds.size(), plain.size());

    TraceOptions unfuse_ln;
    unfuse_ln.unfuseLayerNorm = true;
    const auto ln = BertTraceBuilder(c, unfuse_ln).buildIteration();
    EXPECT_GT(ln.size(), plain.size());
}

TEST(TraceBuilder, QkvFusionPreservesGemmFlops)
{
    const BertConfig c = withPhase1(bertLarge(), 8);
    auto gemm_flops = [](const OpTrace &trace) {
        std::int64_t total = 0;
        for (const auto &op : trace.ops)
            if (op.kind == OpKind::Gemm ||
                op.kind == OpKind::BatchedGemm)
                total += op.stats.flops;
        return total;
    };
    TraceOptions fuse;
    fuse.fuseQkvGemm = true;
    EXPECT_EQ(gemm_flops(BertTraceBuilder(c).buildIteration()),
              gemm_flops(BertTraceBuilder(c, fuse).buildIteration()));
}

TEST(TraceBuilder, MultiTensorOptimizerPreservesTraffic)
{
    const BertConfig c = withPhase1(bertLarge(), 8);
    TraceOptions per_tensor;
    TraceOptions multi;
    multi.optimizerFusion = OptimizerFusion::MultiTensor;
    const auto a = BertTraceBuilder(c, per_tensor).buildUpdate();
    const auto b = BertTraceBuilder(c, multi).buildUpdate();
    EXPECT_EQ(a.totalBytes(), b.totalBytes());
    EXPECT_GT(a.size(), b.size());
}

TEST(TraceBuilder, InferenceTraceHasNoDropoutOrLoss)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 1));
    const OpTrace inference = builder.buildInference();
    for (const auto &op : inference.ops) {
        EXPECT_EQ(op.name.find("dropout"), std::string::npos);
        EXPECT_EQ(op.name.find(".loss"), std::string::npos);
        EXPECT_EQ(op.phase, Phase::Fwd);
    }
}

TEST(TraceBuilder, BatchOfOneStillProducesMatrixOps)
{
    // Takeaway 5: unlike RNNs, B=1 does not create matrix-vector ops.
    BertTraceBuilder builder(withPhase1(bertLarge(), 1));
    for (const auto &op : builder.buildForward().ops) {
        if (op.kind != OpKind::Gemm && op.kind != OpKind::BatchedGemm)
            continue;
        if (op.scope != LayerScope::Transformer)
            continue;
        EXPECT_GT(op.gemm.m, 1) << op.name;
        EXPECT_GT(op.gemm.n, 1) << op.name;
        EXPECT_GT(op.gemm.k, 1) << op.name;
    }
}

TEST(TraceBuilder, ForwardGemmFlopsMatchClosedForm)
{
    // Closed form per layer (FWD): 4 linear GEMMs of 2*T*d^2, FC-1
    // and FC-2 of 2*T*d*f each, and two B-GEMMs of 2*n^2*(d/h)*B*h.
    const BertConfig c = withPhase1(bertLarge(), 16);
    const std::int64_t t = c.tokens(), d = c.dModel, f = c.dFf;
    const std::int64_t per_layer =
        4 * 2 * t * d * d + 2 * (2 * t * d * f) +
        2 * (2 * c.seqLen * c.seqLen * c.headDim() * c.batch *
             c.numHeads);
    const std::int64_t expected = per_layer * c.numLayers;

    std::int64_t measured = 0;
    for (const auto &op : BertTraceBuilder(c).buildForward().ops)
        if (op.scope == LayerScope::Transformer &&
            (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm))
            measured += op.stats.flops;
    EXPECT_EQ(measured, expected);
}

TEST(TraceBuilder, TotalIterationFlopsHaveNoSurprises)
{
    // Iteration GEMM flops = 3x forward (fwd + 2 grad GEMMs per GEMM)
    // for the transformer scope.
    const BertConfig c = withPhase1(bertLarge(), 8);
    BertTraceBuilder builder(c);
    auto gemm_flops = [](const OpTrace &trace) {
        std::int64_t total = 0;
        for (const auto &op : trace.ops)
            if (op.scope == LayerScope::Transformer &&
                (op.kind == OpKind::Gemm ||
                 op.kind == OpKind::BatchedGemm))
                total += op.stats.flops;
        return total;
    };
    EXPECT_EQ(gemm_flops(builder.buildIteration()),
              3 * gemm_flops(builder.buildForward()));
}

// ---- Parameterized invariants across configurations ----

struct ConfigCase {
    const char *name;
    BertConfig config;
};

class TraceInvariants : public ::testing::TestWithParam<ConfigCase>
{
};

TEST_P(TraceInvariants, KernelCountIndependentOfInputSize)
{
    // Kernel count depends only on layer count and options, not B/n.
    BertConfig a = GetParam().config;
    BertConfig b = a;
    b.batch = a.batch * 2;
    EXPECT_EQ(BertTraceBuilder(a).buildIteration().size(),
              BertTraceBuilder(b).buildIteration().size());
}

TEST_P(TraceInvariants, FlopsScaleLinearlyWithBatch)
{
    BertConfig a = GetParam().config;
    BertConfig b = a;
    b.batch = a.batch * 2;
    std::int64_t fwd_a = 0, fwd_b = 0;
    for (const auto &op : BertTraceBuilder(a).buildForward().ops)
        if (op.scope == LayerScope::Transformer)
            fwd_a += op.stats.flops;
    for (const auto &op : BertTraceBuilder(b).buildForward().ops)
        if (op.scope == LayerScope::Transformer)
            fwd_b += op.stats.flops;
    EXPECT_EQ(fwd_b, 2 * fwd_a);
}

TEST_P(TraceInvariants, UpdateWorkIndependentOfBatch)
{
    BertConfig a = GetParam().config;
    BertConfig b = a;
    b.batch = a.batch * 4;
    EXPECT_EQ(BertTraceBuilder(a).buildUpdate().totalBytes(),
              BertTraceBuilder(b).buildUpdate().totalBytes());
}

TEST_P(TraceInvariants, EveryOpHasConsistentTags)
{
    const auto trace =
        BertTraceBuilder(GetParam().config).buildIteration();
    for (const auto &op : trace.ops) {
        EXPECT_FALSE(op.name.empty());
        EXPECT_GE(op.stats.bytesTotal(), 0);
        if (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm) {
            EXPECT_GT(op.gemm.m, 0) << op.name;
            EXPECT_EQ(op.stats.flops, op.gemm.flops()) << op.name;
        }
        if (op.scope == LayerScope::Optimizer) {
            EXPECT_EQ(op.phase, Phase::Update) << op.name;
        }
    }
}

TEST_P(TraceInvariants, AttentionScoreWorkScalesQuadraticallyWithN)
{
    BertConfig a = GetParam().config;
    BertConfig b = a;
    b.seqLen = a.seqLen * 2;
    auto score_flops = [](const BertConfig &config) {
        std::int64_t total = 0;
        for (const auto &op :
             BertTraceBuilder(config).buildForward().ops) {
            if (op.sub == SubLayer::AttnBGemm ||
                op.sub == SubLayer::AttnScaleMaskDrSm) {
                total += op.stats.flops;
            }
        }
        return total;
    };
    // Doubling n quadruples score-matrix work but only doubles the
    // d/h-dim factor of the B-GEMMs -> between 2x and 4x, close to 4x
    // for the EW part. Check the score EW kernels exactly.
    std::int64_t ew_a = 0, ew_b = 0;
    for (const auto &op : BertTraceBuilder(a).buildForward().ops)
        if (op.sub == SubLayer::AttnScaleMaskDrSm)
            ew_a += op.numel;
    for (const auto &op : BertTraceBuilder(b).buildForward().ops)
        if (op.sub == SubLayer::AttnScaleMaskDrSm)
            ew_b += op.numel;
    EXPECT_EQ(ew_b, 4 * ew_a);
    EXPECT_GT(score_flops(b), 2 * score_flops(a));
}

INSTANTIATE_TEST_SUITE_P(
    Presets, TraceInvariants,
    ::testing::Values(
        ConfigCase{"base_b4", withPhase1(bertBase(), 4)},
        ConfigCase{"large_b8", withPhase1(bertLarge(), 8)},
        ConfigCase{"c1_b4", withPhase1(scalingC1(), 4)},
        ConfigCase{"c3_b2", withPhase1(scalingC3(), 2)}),
    [](const ::testing::TestParamInfo<ConfigCase> &info) {
        return info.param.name;
    });

} // namespace
} // namespace bertprof
