/** Tests for BertConfig::validate and the task/decoder presets. */

#include <gtest/gtest.h>

#include "trace/bert_config.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

TEST(ConfigValidate, PresetsAreValid)
{
    EXPECT_EQ(bertBase().validate(), "");
    EXPECT_EQ(bertLarge().validate(), "");
    EXPECT_EQ(scalingC1().validate(), "");
    EXPECT_EQ(scalingC3().validate(), "");
    EXPECT_EQ(gpt2MediumLike().validate(), "");
    EXPECT_EQ(withSquadFineTune(bertLarge()).validate(), "");
    EXPECT_EQ(withClassificationFineTune(bertLarge()).validate(), "");
}

TEST(ConfigValidate, CatchesHeadMismatch)
{
    BertConfig config = bertLarge();
    config.numHeads = 7;
    EXPECT_NE(config.validate().find("numHeads"), std::string::npos);
}

TEST(ConfigValidate, CatchesSeqLenBeyondPositions)
{
    BertConfig config = bertLarge();
    config.seqLen = 1024; // maxPositions is 512
    EXPECT_NE(config.validate().find("maxPositions"), std::string::npos);
}

TEST(ConfigValidate, CatchesBadCheckpointInterval)
{
    BertConfig config = bertLarge();
    config.checkpointEvery = 5;
    EXPECT_NE(config.validate().find("checkpointEvery"),
              std::string::npos);
}

TEST(ConfigValidate, CatchesNonPositiveDims)
{
    BertConfig config = bertLarge();
    config.numLayers = 0;
    EXPECT_FALSE(config.validate().empty());
    config = bertLarge();
    config.batch = 0;
    EXPECT_FALSE(config.validate().empty());
    config = bertLarge();
    config.maxPredictions = config.seqLen + 1;
    EXPECT_FALSE(config.validate().empty());
}

TEST(ConfigValidate, CatchesTooFewClasses)
{
    BertConfig config = withClassificationFineTune(bertLarge(), 8, 1);
    EXPECT_NE(config.validate().find("numClasses"), std::string::npos);
}

TEST(Gpt2Preset, DecoderTrainingTraceMatchesEncoderShapes)
{
    // Sec. 2.3: the causal mask only zeroes score elements — the
    // training kernel trace of a decoder is shape-identical to an
    // encoder of the same size. Compare GPT-2-Medium-like against a
    // BERT-Large resized to the same input.
    BertConfig gpt = gpt2MediumLike();
    BertConfig bert = bertLarge();
    bert.seqLen = gpt.seqLen;
    bert.maxPositions = gpt.maxPositions;
    bert.batch = gpt.batch;

    BertTraceBuilder gpt_builder(gpt);
    BertTraceBuilder bert_builder(bert);
    const OpTrace a = gpt_builder.buildForward();
    const OpTrace b = bert_builder.buildForward();

    auto layer_gemms = [](const OpTrace &trace) {
        std::vector<std::string> out;
        for (const auto &op : trace.ops)
            if (op.scope == LayerScope::Transformer &&
                (op.kind == OpKind::Gemm ||
                 op.kind == OpKind::BatchedGemm))
                out.push_back(op.name + ":" + op.gemm.label());
        return out;
    };
    EXPECT_EQ(layer_gemms(a), layer_gemms(b));
}

TEST(Gpt2Preset, LmHeadIsHeavierThanMaskedLm)
{
    // Causal LM predicts every position: the output layer grows.
    BertTraceBuilder gpt(gpt2MediumLike());
    std::int64_t lm_flops = 0;
    for (const auto &op : gpt.buildForward().ops)
        if (op.scope == LayerScope::Output)
            lm_flops += op.stats.flops;
    BertConfig bert = bertLarge();
    bert.seqLen = 512;
    bert.batch = 4;
    bert.maxPredictions = 80;
    BertTraceBuilder mlm(bert);
    std::int64_t mlm_flops = 0;
    for (const auto &op : mlm.buildForward().ops)
        if (op.scope == LayerScope::Output)
            mlm_flops += op.stats.flops;
    EXPECT_GT(lm_flops, 5 * mlm_flops);
}

} // namespace
} // namespace bertprof
