/**
 * Tests for the packed, register-blocked GEMM engine
 * (ops/gemm_microkernel.h): packed-vs-reference cross-checks over
 * shapes chosen to stress every edge path (smaller than one register
 * tile, prime extents, degenerate vectors, block-boundary
 * straddlers), all four transpose combinations, the alpha/beta
 * semantics grid, packing-layout unit tests, aliasing rejection, and
 * the BERTPROF_GEMM_IMPL resolution order.
 */

#include <cstdlib>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "ops/gemm.h"
#include "ops/gemm_microkernel.h"
#include "ops/pack.h"
#include "runtime/config.h"
#include "util/rng.h"

namespace bertprof {
namespace {

/** Naive double-accumulation oracle (same as test_gemm.cc's). */
void
naiveGemm(const Tensor &a, const Tensor &b, Tensor &c, bool trans_a,
          bool trans_b, float alpha, float beta)
{
    const std::int64_t m = trans_a ? a.shape().dim(1) : a.shape().dim(0);
    const std::int64_t k = trans_a ? a.shape().dim(0) : a.shape().dim(1);
    const std::int64_t n = trans_b ? b.shape().dim(0) : b.shape().dim(1);
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                const float av = trans_a ? a.at(p, i) : a.at(i, p);
                const float bv = trans_b ? b.at(j, p) : b.at(p, j);
                acc += static_cast<double>(av) * bv;
            }
            const float prior = beta == 0.0f ? 0.0f : beta * c.at(i, j);
            c.at(i, j) = alpha * static_cast<float>(acc) + prior;
        }
    }
}

class GemmMicrokernelTest : public ::testing::Test
{
  protected:
    void SetUp() override { setGemmImpl(GemmImpl::Packed); }
    void
    TearDown() override
    {
        clearGemmImplOverride();
        setNumThreads(0);
    }
};

using PackedCase = std::tuple<int, int, int>;

class PackedShapeTest : public ::testing::TestWithParam<PackedCase>
{
  protected:
    void SetUp() override { setGemmImpl(GemmImpl::Packed); }
    void TearDown() override { clearGemmImplOverride(); }
};

TEST_P(PackedShapeTest, AllTransAlphaBetaCombosMatchNaive)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 7919 + n * 104729 + k));
    for (const bool trans_a : {false, true}) {
        for (const bool trans_b : {false, true}) {
            Tensor a(trans_a ? Shape({k, m}) : Shape({m, k}));
            Tensor b(trans_b ? Shape({n, k}) : Shape({k, n}));
            a.fillNormal(rng);
            b.fillNormal(rng);
            for (const float alpha : {0.0f, 1.0f, -2.5f}) {
                for (const float beta : {0.0f, 1.0f, -2.5f}) {
                    Tensor c(Shape({m, n})), ref(Shape({m, n}));
                    c.fillNormal(rng);
                    for (std::int64_t i = 0; i < c.numel(); ++i)
                        ref.at(i) = c.at(i);
                    gemm(a, b, c, trans_a, trans_b, alpha, beta);
                    naiveGemm(a, b, ref, trans_a, trans_b, alpha, beta);
                    // Error scales with the k-long dot products.
                    const float tol =
                        1e-4f * static_cast<float>(k > 0 ? k : 1);
                    EXPECT_LT(maxAbsDiff(c, ref), tol)
                        << "m=" << m << " n=" << n << " k=" << k
                        << " tA=" << trans_a << " tB=" << trans_b
                        << " alpha=" << alpha << " beta=" << beta;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeAndBlockShapes, PackedShapeTest,
    ::testing::Values(
        // Smaller than one MR x NR register tile.
        PackedCase{1, 1, 1}, PackedCase{2, 3, 4}, PackedCase{3, 5, 2},
        // Degenerate row / column vectors.
        PackedCase{1, 97, 64}, PackedCase{97, 1, 64}, PackedCase{1, 1, 300},
        // Prime extents: every loop level ends in a ragged tile.
        PackedCase{7, 11, 13}, PackedCase{61, 67, 71},
        PackedCase{127, 131, 257},
        // Exactly one cache block, and one element past it.
        PackedCase{96, 64, 256}, PackedCase{97, 65, 257},
        // K spanning multiple KC blocks (beta-chaining across blocks).
        PackedCase{33, 29, 600}));

TEST_F(GemmMicrokernelTest, PackedAndReferenceEnginesAgree)
{
    Rng rng(4242);
    const std::int64_t m = 143, n = 155, k = 301;
    for (const bool trans_a : {false, true}) {
        for (const bool trans_b : {false, true}) {
            Tensor a(trans_a ? Shape({k, m}) : Shape({m, k}));
            Tensor b(trans_b ? Shape({n, k}) : Shape({k, n}));
            a.fillNormal(rng);
            b.fillNormal(rng);
            Tensor c_packed(Shape({m, n})), c_ref(Shape({m, n}));

            setGemmImpl(GemmImpl::Packed);
            gemm(a, b, c_packed, trans_a, trans_b, 1.5f, 0.0f);
            setGemmImpl(GemmImpl::Reference);
            gemm(a, b, c_ref, trans_a, trans_b, 1.5f, 0.0f);

            EXPECT_LT(maxAbsDiff(c_packed, c_ref), 1e-2f)
                << "tA=" << trans_a << " tB=" << trans_b;
        }
    }
}

TEST_F(GemmMicrokernelTest, BatchedPackedMatchesPerBatchNaive)
{
    Rng rng(31337);
    const std::int64_t batch = 5, m = 37, n = 23, k = 41;
    for (const bool trans_a : {false, true}) {
        for (const bool trans_b : {false, true}) {
            Tensor a(trans_a ? Shape({batch, k, m}) : Shape({batch, m, k}));
            Tensor b(trans_b ? Shape({batch, n, k}) : Shape({batch, k, n}));
            a.fillNormal(rng);
            b.fillNormal(rng);
            Tensor c(Shape({batch, m, n}));
            batchedGemm(a, b, c, trans_a, trans_b, 1.0f, 0.0f);

            const std::int64_t a_step = a.shape().dim(1) * a.shape().dim(2);
            const std::int64_t b_step = b.shape().dim(1) * b.shape().dim(2);
            for (std::int64_t g = 0; g < batch; ++g) {
                Tensor ag(trans_a ? Shape({k, m}) : Shape({m, k}));
                Tensor bg(trans_b ? Shape({n, k}) : Shape({k, n}));
                for (std::int64_t i = 0; i < a_step; ++i)
                    ag.at(i) = a.at(g * a_step + i);
                for (std::int64_t i = 0; i < b_step; ++i)
                    bg.at(i) = b.at(g * b_step + i);
                Tensor ref(Shape({m, n}));
                naiveGemm(ag, bg, ref, trans_a, trans_b, 1.0f, 0.0f);
                for (std::int64_t i = 0; i < m * n; ++i)
                    EXPECT_NEAR(c.at(g * m * n + i), ref.at(i), 1e-3f)
                        << "g=" << g << " tA=" << trans_a
                        << " tB=" << trans_b;
            }
        }
    }
}

TEST_F(GemmMicrokernelTest, StatsIdenticalToReferenceEngine)
{
    Tensor a(Shape({19, 31})), b(Shape({31, 23})), c(Shape({19, 23}));
    setGemmImpl(GemmImpl::Packed);
    const KernelStats packed = gemm(a, b, c);
    setGemmImpl(GemmImpl::Reference);
    const KernelStats ref = gemm(a, b, c);
    EXPECT_EQ(packed.flops, ref.flops);
    EXPECT_EQ(packed.bytesRead, ref.bytesRead);
    EXPECT_EQ(packed.bytesWritten, ref.bytesWritten);
    EXPECT_EQ(packed.flops, 2 * 19 * 23 * 31);
}

TEST(GemmPack, PackAZeroPadsRaggedPanels)
{
    // 3x2 op(A), row-major (row_stride=2, col_stride=1), mr=4: one
    // panel, columns of op(A) laid out mr at a time, row 3 padded.
    const std::vector<float> a = {1, 2, 3, 4, 5, 6};
    std::vector<float> dst(4 * 2, -1.0f);
    packA(a.data(), 2, 1, 3, 2, 4, dst.data());
    const std::vector<float> want = {1, 3, 5, 0, 2, 4, 6, 0};
    EXPECT_EQ(dst, want);
}

TEST(GemmPack, PackATransposedMatchesLogicalView)
{
    // Storage is 2x3 (k=2 rows, m=3 cols); op(A) = A^T is 3x2 with
    // row_stride=1, col_stride=3. Same logical block as above.
    const std::vector<float> a_t = {1, 3, 5, 2, 4, 6};
    std::vector<float> dst(4 * 2, -1.0f);
    packA(a_t.data(), 1, 3, 3, 2, 4, dst.data());
    const std::vector<float> want = {1, 3, 5, 0, 2, 4, 6, 0};
    EXPECT_EQ(dst, want);
}

TEST(GemmPack, PackBZeroPadsRaggedPanels)
{
    // 2x3 op(B), row-major (row_stride=3, col_stride=1), nr=2: two
    // panels; the second holds only column 2 and pads the rest.
    const std::vector<float> b = {1, 2, 3, 4, 5, 6};
    std::vector<float> dst(2 * 2 * 2, -1.0f);
    packB(b.data(), 3, 1, 2, 3, 2, dst.data());
    const std::vector<float> want = {1, 2, 4, 5, 3, 0, 6, 0};
    EXPECT_EQ(dst, want);
}

TEST(GemmConfig, EnvironmentSelectsEngineAndOverrideWins)
{
    clearGemmImplOverride();
    ASSERT_EQ(::setenv("BERTPROF_GEMM_IMPL", "reference", 1), 0);
    EXPECT_EQ(configuredGemmImpl(), GemmImpl::Reference);
    ASSERT_EQ(::setenv("BERTPROF_GEMM_IMPL", "packed", 1), 0);
    EXPECT_EQ(configuredGemmImpl(), GemmImpl::Packed);

    ASSERT_EQ(::setenv("BERTPROF_GEMM_IMPL", "reference", 1), 0);
    setGemmImpl(GemmImpl::Packed);
    EXPECT_EQ(configuredGemmImpl(), GemmImpl::Packed);
    clearGemmImplOverride();
    EXPECT_EQ(configuredGemmImpl(), GemmImpl::Reference);

    // Unknown values fall back to the packed default (with a
    // one-time warning).
    ASSERT_EQ(::setenv("BERTPROF_GEMM_IMPL", "turbo", 1), 0);
    EXPECT_EQ(configuredGemmImpl(), GemmImpl::Packed);

    ASSERT_EQ(::unsetenv("BERTPROF_GEMM_IMPL"), 0);
    EXPECT_EQ(configuredGemmImpl(), GemmImpl::Packed);
    EXPECT_STREQ(gemmImplName(GemmImpl::Packed), "packed");
    EXPECT_STREQ(gemmImplName(GemmImpl::Reference), "reference");
}

using GemmAliasDeath = GemmMicrokernelTest;

TEST_F(GemmAliasDeath, OutputAliasingAnInputIsRejected)
{
    Tensor a(Shape({8, 8})), b(Shape({8, 8}));
    EXPECT_EXIT(gemm(a, b, a), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
    EXPECT_EXIT(gemm(a, b, b), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
    Tensor ba(Shape({2, 4, 4})), bb(Shape({2, 4, 4}));
    EXPECT_EXIT(batchedGemm(ba, bb, ba), ::testing::ExitedWithCode(1),
                "requirement failed|contract failed");
}

} // namespace
} // namespace bertprof
