/** Tests for the LayerNorm kernels, including full gradient checks. */

#include <gtest/gtest.h>

#include "ops/layernorm.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace bertprof {
namespace {

using testing::expectGradientsMatch;

struct LnFixture {
    std::int64_t rows;
    std::int64_t cols;
    Tensor in, gamma, beta, out, mean, rstd;

    LnFixture(std::int64_t r, std::int64_t c, std::uint64_t seed = 1)
        : rows(r), cols(c), in(Shape({r, c})), gamma(Shape({c})),
          beta(Shape({c})), out(Shape({r, c})), mean(Shape({r})),
          rstd(Shape({r}))
    {
        Rng rng(seed);
        in.fillNormal(rng, 0.5f, 2.0f);
        gamma.fillNormal(rng, 1.0f, 0.2f);
        beta.fillNormal(rng, 0.0f, 0.2f);
    }

    void forward() { layerNormForward(in, gamma, beta, out, mean, rstd); }

    double
    lossOfForward()
    {
        Tensor y(in.shape()), m(Shape({rows})), s(Shape({rows}));
        layerNormForward(in, gamma, beta, y, m, s);
        // Weighted sum so every element's gradient differs.
        double total = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            total += static_cast<double>(y.at(i)) * (0.1 * (i % 7) - 0.3);
        return total;
    }
};

TEST(LayerNorm, NormalizesRowsWithUnitGamma)
{
    LnFixture f(4, 16);
    f.gamma.fill(1.0f);
    f.beta.fill(0.0f);
    f.forward();
    for (std::int64_t r = 0; r < 4; ++r) {
        double mu = 0.0, var = 0.0;
        for (std::int64_t c = 0; c < 16; ++c)
            mu += f.out.at(r, c);
        mu /= 16.0;
        for (std::int64_t c = 0; c < 16; ++c) {
            const double d = f.out.at(r, c) - mu;
            var += d * d;
        }
        var /= 16.0;
        EXPECT_NEAR(mu, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(LayerNorm, GammaBetaApplied)
{
    LnFixture f(1, 8);
    f.gamma.fill(2.0f);
    f.beta.fill(3.0f);
    f.forward();
    double mu = 0.0;
    for (std::int64_t c = 0; c < 8; ++c)
        mu += f.out.at(0, c);
    EXPECT_NEAR(mu / 8.0, 3.0, 1e-4); // mean shifted to beta
}

TEST(LayerNorm, SavesMeanAndRstd)
{
    LnFixture f(2, 4);
    f.in = Tensor(Shape({2, 4}), {1, 2, 3, 4, 10, 10, 10, 10});
    f.forward();
    EXPECT_NEAR(f.mean.at(0), 2.5f, 1e-5f);
    EXPECT_NEAR(f.mean.at(1), 10.0f, 1e-5f);
    // Second row has ~zero variance: rstd is finite and large.
    EXPECT_GT(f.rstd.at(1), 100.0f);
}

TEST(LayerNorm, InputGradientMatchesFiniteDifference)
{
    LnFixture f(3, 6);
    f.forward();
    Tensor dout(f.in.shape());
    for (std::int64_t i = 0; i < dout.numel(); ++i)
        dout.at(i) = static_cast<float>(0.1 * (i % 7) - 0.3);
    Tensor din(f.in.shape()), dgamma(f.gamma.shape()),
        dbeta(f.beta.shape());
    layerNormBackward(f.in, f.gamma, f.mean, f.rstd, dout, din, dgamma,
                      dbeta);
    auto loss = [&]() { return f.lossOfForward(); };
    expectGradientsMatch(f.in, loss, din, 1e-3, 2e-2);
}

TEST(LayerNorm, GammaGradientMatchesFiniteDifference)
{
    LnFixture f(3, 6, 7);
    f.forward();
    Tensor dout(f.in.shape());
    for (std::int64_t i = 0; i < dout.numel(); ++i)
        dout.at(i) = static_cast<float>(0.1 * (i % 7) - 0.3);
    Tensor din(f.in.shape()), dgamma(f.gamma.shape()),
        dbeta(f.beta.shape());
    layerNormBackward(f.in, f.gamma, f.mean, f.rstd, dout, din, dgamma,
                      dbeta);
    auto loss = [&]() { return f.lossOfForward(); };
    expectGradientsMatch(f.gamma, loss, dgamma, 1e-3, 2e-2);
    expectGradientsMatch(f.beta, loss, dbeta, 1e-3, 2e-2);
}

TEST(LayerNorm, InputGradientSumsToZeroPerRow)
{
    // LN output is invariant to constant row shifts, so din must be
    // orthogonal to the constant vector.
    LnFixture f(2, 8, 13);
    f.forward();
    Tensor dout(f.in.shape());
    Rng rng(3);
    dout.fillNormal(rng);
    Tensor din(f.in.shape()), dgamma(f.gamma.shape()),
        dbeta(f.beta.shape());
    layerNormBackward(f.in, f.gamma, f.mean, f.rstd, dout, din, dgamma,
                      dbeta);
    for (std::int64_t r = 0; r < 2; ++r) {
        double row = 0.0;
        for (std::int64_t c = 0; c < 8; ++c)
            row += din.at(r, c);
        EXPECT_NEAR(row, 0.0, 1e-4);
    }
}

} // namespace
} // namespace bertprof
