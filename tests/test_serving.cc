/**
 * @file
 * Serving-runtime units: bucket grids, the pending queue's
 * deadline-aware lead selection, the dynamic batcher's
 * max-batch/max-wait/close policy, latency percentiles, the Poisson
 * schedule — and the tentpole numerical property: a request's logits
 * are bitwise identical whether it runs solo, inside a mixed-length
 * bucketed batch, or padded up a bucket, at 1 and at 8 threads.
 */

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/config.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/latency.h"
#include "serve/serve_config.h"
#include "serve/traffic.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using ::bertprof::testing::tinyBertConfig;

constexpr std::int64_t kPadId = 3;

TEST(Bucketing, DefaultSpecFollowsSweepLadder)
{
    const BucketSpec full = BucketSpec::defaultSpec(512);
    EXPECT_EQ(full.boundaries(),
              (std::vector<std::int64_t>{32, 64, 128, 256, 384, 512}));
    // Clipped to a small model: one bucket at maxPositions.
    const BucketSpec tiny = BucketSpec::defaultSpec(32);
    EXPECT_EQ(tiny.boundaries(), (std::vector<std::int64_t>{32}));
    // A max that is not on the ladder becomes the top boundary.
    const BucketSpec odd = BucketSpec::defaultSpec(100);
    EXPECT_EQ(odd.boundaries(), (std::vector<std::int64_t>{32, 64, 100}));
}

TEST(Bucketing, BucketForPicksSmallestFit)
{
    const BucketSpec spec({8, 16, 32});
    EXPECT_EQ(spec.bucketFor(1), 0);
    EXPECT_EQ(spec.bucketFor(8), 0);
    EXPECT_EQ(spec.bucketFor(9), 1);
    EXPECT_EQ(spec.bucketFor(16), 1);
    EXPECT_EQ(spec.bucketFor(32), 2);
    EXPECT_EQ(spec.bucketFor(33), -1);
    EXPECT_EQ(spec.bucketFor(0), -1);
    EXPECT_EQ(spec.boundary(1), 16);
    EXPECT_EQ(spec.maxLen(), 32);
}

PendingRequest
makePending(std::uint64_t id, std::int64_t len, MonoTime arrival,
            std::int64_t deadline_us)
{
    PendingRequest p;
    p.request.id = id;
    p.request.tokenIds.assign(static_cast<std::size_t>(len), 5);
    p.request.segmentIds.assign(static_cast<std::size_t>(len), 0);
    p.request.arrival = arrival;
    p.request.deadline = monoAddMicros(arrival, deadline_us);
    return p;
}

TEST(PendingQueueTest, FifoWithinBucketAndDeadlineLead)
{
    PendingQueue queue(2);
    const MonoTime t0 = monoNow();
    // Bucket 0 gets two requests; bucket 1's single request is the
    // most urgent (earliest deadline) and must lead.
    queue.push(0, makePending(1, 4, t0, 5000));
    queue.push(0, makePending(2, 4, monoAddMicros(t0, 10), 5000));
    queue.push(1, makePending(3, 12, monoAddMicros(t0, 20), 100));
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.leadBucket(), 1);
    EXPECT_EQ(queue.head(1).id, 3u);

    auto batch = queue.popUpTo(1, 8);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].request.id, 3u);

    // Now bucket 0 leads; FIFO order within it.
    EXPECT_EQ(queue.leadBucket(), 0);
    auto rest = queue.popUpTo(0, 1);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].request.id, 1u);
    EXPECT_TRUE(!queue.empty());
    rest = queue.popUpTo(0, 1);
    EXPECT_EQ(rest[0].request.id, 2u);
    EXPECT_TRUE(queue.empty());
}

/** A ResolvedServePolicy with just batch/wait set (rest defaulted). */
ResolvedServePolicy
makePolicy(int max_batch, std::int64_t max_wait_us)
{
    ResolvedServePolicy policy;
    policy.maxBatch = max_batch;
    policy.maxWaitUs = max_wait_us;
    return policy;
}

TEST(DynamicBatcherTest, CoalescesSameBucketUpToMaxBatch)
{
    DynamicBatcher batcher(BucketSpec({8, 16}),
                           makePolicy(/*max_batch=*/3,
                                      /*max_wait_us=*/1000000));
    const MonoTime t0 = monoNow();
    for (std::uint64_t id = 1; id <= 3; ++id) {
        PendingRequest p = makePending(id, 4, t0, 60000000);
        EXPECT_EQ(batcher.submit(p), RejectReason::None);
    }
    Batch batch;
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_EQ(batch.bucket, 0);
    EXPECT_EQ(batch.paddedLen, 8);
    ASSERT_EQ(batch.requests.size(), 3u);
    for (std::uint64_t id = 1; id <= 3; ++id)
        EXPECT_EQ(batch.requests[id - 1].request.id, id);
    EXPECT_EQ(batcher.pendingCount(), 0u);
}

TEST(DynamicBatcherTest, MaxWaitFlushesLoneRequest)
{
    DynamicBatcher batcher(BucketSpec({8}),
                           makePolicy(/*max_batch=*/64,
                                      /*max_wait_us=*/500));
    PendingRequest p = makePending(7, 4, monoNow(), 60000000);
    EXPECT_EQ(batcher.submit(p), RejectReason::None);
    Batch batch;
    const MonoTime start = monoNow();
    ASSERT_TRUE(batcher.nextBatch(batch));
    // The lone request shipped after ~max_wait, far below max_batch.
    EXPECT_EQ(batch.requests.size(), 1u);
    EXPECT_LT(secondsBetween(start, monoNow()), 5.0);
}

TEST(DynamicBatcherTest, DeadlineBeatsMaxWait)
{
    // shedExpired off: the legacy flush-accelerator semantics, where
    // a request reaching its deadline still ships (late) instead of
    // being shed at dequeue.
    ResolvedServePolicy policy = makePolicy(/*max_batch=*/64,
                                            /*max_wait_us=*/60000000);
    policy.shedExpired = false;
    DynamicBatcher batcher(BucketSpec({8}), policy);
    // Deadline 1ms out; max-wait alone would hold for a minute.
    PendingRequest p = makePending(8, 4, monoNow(), 1000);
    EXPECT_EQ(batcher.submit(p), RejectReason::None);
    Batch batch;
    const MonoTime start = monoNow();
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_EQ(batch.requests.size(), 1u);
    EXPECT_LT(secondsBetween(start, monoNow()), 5.0);
}

TEST(DynamicBatcherTest, ExpiredQueuedRequestIsShedAtDequeue)
{
    // With shedding on (the default), the same scenario resolves the
    // request Expired at dequeue and the batcher moves on to live
    // work instead of shipping a dead batch.
    DynamicBatcher batcher(BucketSpec({8, 16}),
                           makePolicy(/*max_batch=*/64,
                                      /*max_wait_us=*/2000));
    PendingRequest doomed = makePending(1, 4, monoNow(), 1000);
    std::future<InferReply> doomed_future = doomed.promise.get_future();
    EXPECT_EQ(batcher.submit(doomed), RejectReason::None);
    PendingRequest alive = makePending(2, 12, monoNow(), 60000000);
    EXPECT_EQ(batcher.submit(alive), RejectReason::None);

    Batch batch;
    ASSERT_TRUE(batcher.nextBatch(batch));
    ASSERT_EQ(batch.requests.size(), 1u);
    EXPECT_EQ(batch.requests[0].request.id, 2u);
    const InferReply shed = doomed_future.get();
    EXPECT_FALSE(shed.ok);
    EXPECT_EQ(shed.reject, RejectReason::Expired);
    EXPECT_EQ(batcher.rejectedCount(RejectReason::Expired), 1);
}

TEST(DynamicBatcherTest, RejectsOverlongAndClosed)
{
    DynamicBatcher batcher(BucketSpec({8}), makePolicy(4, 1000));
    PendingRequest too_long = makePending(1, 9, monoNow(), 1000);
    EXPECT_EQ(batcher.submit(too_long), RejectReason::Overlong);
    PendingRequest empty = makePending(2, 0, monoNow(), 1000);
    EXPECT_EQ(batcher.submit(empty), RejectReason::Overlong);

    PendingRequest queued = makePending(3, 4, monoNow(), 1000);
    EXPECT_EQ(batcher.submit(queued), RejectReason::None);
    batcher.close();
    PendingRequest late = makePending(4, 4, monoNow(), 1000);
    EXPECT_EQ(batcher.submit(late), RejectReason::Shutdown);

    // Close drains: the queued request still ships, then the stream
    // ends.
    Batch batch;
    ASSERT_TRUE(batcher.nextBatch(batch));
    EXPECT_EQ(batch.requests.size(), 1u);
    EXPECT_EQ(batch.requests[0].request.id, 3u);
    EXPECT_FALSE(batcher.nextBatch(batch));
}

TEST(LatencyRecorderTest, NearestRankPercentiles)
{
    LatencyRecorder recorder;
    for (int i = 1; i <= 100; ++i)
        recorder.add(static_cast<double>(i));
    const LatencySummary s = recorder.summary();
    EXPECT_EQ(s.count, 100);
    EXPECT_DOUBLE_EQ(s.p50Seconds, 50.0);
    EXPECT_DOUBLE_EQ(s.p90Seconds, 90.0);
    EXPECT_DOUBLE_EQ(s.p99Seconds, 99.0);
    EXPECT_DOUBLE_EQ(s.p999Seconds, 100.0);
    EXPECT_DOUBLE_EQ(s.maxSeconds, 100.0);
    EXPECT_DOUBLE_EQ(s.meanSeconds, 50.5);

    EXPECT_EQ(LatencyRecorder().summary().count, 0);
}

TEST(TrafficTest, PoissonScheduleIsDeterministicAndCalibrated)
{
    const auto a = poissonSchedule(1000.0, 2000, 42);
    const auto b = poissonSchedule(1000.0, 2000, 42);
    EXPECT_EQ(a, b);
    const auto c = poissonSchedule(1000.0, 2000, 43);
    EXPECT_NE(a, c);
    ASSERT_EQ(a.size(), 2000u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i], a[i - 1]);
    // 2000 arrivals at 1000 qps span ~2s; allow generous slack.
    EXPECT_GT(a.back(), 1.0);
    EXPECT_LT(a.back(), 4.0);
}

TEST(ServeConfigTest, EnvKnobsResolve)
{
    ServeOptions opts;
    opts.maxBatch = 16;
    opts.maxWaitUs = 123;
    EXPECT_EQ(opts.resolvedMaxBatch(), 16);
    EXPECT_EQ(opts.resolvedMaxWaitUs(), 123);

    // Fallback path: the env knob (or its default) applies.
    ServeOptions defaults;
    EXPECT_EQ(defaults.resolvedMaxBatch(), configuredServeMaxBatch());
    EXPECT_EQ(defaults.resolvedMaxWaitUs(), configuredServeMaxWaitUs());
}

/** Build a one-off Batch around explicit requests. */
Batch
makeBatch(std::vector<PendingRequest> requests, std::int64_t padded_len)
{
    Batch batch;
    batch.bucket = 0;
    batch.paddedLen = padded_len;
    batch.requests = std::move(requests);
    return batch;
}

bool
sameRow(const InferReply &a, const InferReply &b)
{
    if (a.rows != b.rows || a.cols != b.cols)
        return false;
    return std::memcmp(a.logits.data(), b.logits.data(),
                       a.logits.size() * sizeof(float)) == 0;
}

/**
 * The bitwise padding-invariance property behind bucketed batching:
 * batch composition and pad amount must not change a request's
 * logits at all — masked keys underflow out of the softmax exactly,
 * and every other op is row-local.
 */
void
runPaddingInvariance(int num_threads)
{
    setNumThreads(num_threads);
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(31);
    clf.initialize(init);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);

    Rng body(32);
    InferRequest probe =
        syntheticRequest(body, 1, /*len=*/10, config.vocabSize);
    InferRequest full =
        syntheticRequest(body, 2, /*len=*/16, config.vocabSize);
    InferRequest mid =
        syntheticRequest(body, 3, /*len=*/12, config.vocabSize);

    auto pend = [](const InferRequest &req) {
        PendingRequest p;
        p.request = req;
        return p;
    };

    // Solo at bucket 16.
    std::vector<InferReply> solo;
    {
        std::vector<PendingRequest> reqs;
        reqs.push_back(pend(probe));
        Batch batch = makeBatch(std::move(reqs), 16);
        engine.run(batch, solo);
    }
    // Mixed-length batch at the same bucket.
    std::vector<InferReply> mixed;
    {
        std::vector<PendingRequest> reqs;
        reqs.push_back(pend(probe));
        reqs.push_back(pend(full));
        reqs.push_back(pend(mid));
        Batch batch = makeBatch(std::move(reqs), 16);
        engine.run(batch, mixed);
    }
    // Padded one bucket further (32 = tiny model's maxPositions).
    std::vector<InferReply> padded;
    {
        std::vector<PendingRequest> reqs;
        reqs.push_back(pend(probe));
        Batch batch = makeBatch(std::move(reqs), 32);
        engine.run(batch, padded);
    }

    ASSERT_EQ(solo.size(), 1u);
    ASSERT_EQ(mixed.size(), 3u);
    ASSERT_EQ(padded.size(), 1u);
    EXPECT_TRUE(solo[0].ok);
    EXPECT_EQ(solo[0].rows, 1);
    EXPECT_EQ(solo[0].cols, config.numClasses);
    EXPECT_TRUE(sameRow(solo[0], mixed[0]))
        << "batch composition changed the probe's logits";
    EXPECT_TRUE(sameRow(solo[0], padded[0]))
        << "padding to a larger bucket changed the probe's logits";
    setNumThreads(0);
}

TEST(PaddingInvariance, BitwiseAtOneThread)
{
    runPaddingInvariance(1);
}

TEST(PaddingInvariance, BitwiseAtEightThreads)
{
    runPaddingInvariance(8);
}

} // namespace
} // namespace bertprof
