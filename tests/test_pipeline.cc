/** Tests for the pipeline-parallelism model. */

#include <gtest/gtest.h>

#include "dist/pipeline.h"

namespace bertprof {
namespace {

class PipelineFixture : public ::testing::Test
{
  protected:
    DeviceSpec spec_ = mi100();
    CommModel comm_{spec_, AllReduceAlgo::Ring};
    PipelineModel pipeline_{spec_, comm_};
    BertConfig config_ = withPhase1(bertLarge(), 32);
};

TEST_F(PipelineFixture, SingleStageMatchesSingleDevice)
{
    const auto profile = pipeline_.evaluate(config_, 1, 1);
    EXPECT_EQ(profile.bubbleFraction, 0.0);
    EXPECT_EQ(profile.commSeconds, 0.0);
    EXPECT_GT(profile.totalSeconds, 0.0);
}

TEST_F(PipelineFixture, BubbleFractionMatchesFormula)
{
    const auto profile = pipeline_.evaluate(config_, 4, 8);
    EXPECT_DOUBLE_EQ(profile.bubbleFraction, 3.0 / 11.0);
}

TEST_F(PipelineFixture, MoreMicroBatchesShrinkBubbleButLoseEfficiency)
{
    const auto coarse = pipeline_.evaluate(config_, 4, 4);
    const auto fine = pipeline_.evaluate(config_, 4, 16);
    EXPECT_LT(fine.bubbleFraction, coarse.bubbleFraction);
    // The flip side (and why micro-batch choice is a real tradeoff):
    // smaller micro-batches run less efficient GEMMs and pay more
    // launch overhead, so total per-stage compute grows.
    EXPECT_GT(fine.stageSeconds, coarse.stageSeconds);
}

TEST_F(PipelineFixture, MoreStagesCutPerDeviceComputeButAddBubble)
{
    const auto s2 = pipeline_.evaluate(config_, 2, 8);
    const auto s8 = pipeline_.evaluate(config_, 8, 8);
    // Per-stage (per-slot) work shrinks with stages...
    EXPECT_LT(s8.stageSeconds, s2.stageSeconds);
    // ...but the bubble grows.
    EXPECT_GT(s8.bubbleFraction, s2.bubbleFraction);
}

TEST_F(PipelineFixture, UpdateWorkSplitsAcrossStages)
{
    const auto s1 = pipeline_.evaluate(config_, 1, 8);
    const auto s4 = pipeline_.evaluate(config_, 4, 8);
    EXPECT_NEAR(s4.updateSeconds, s1.updateSeconds / 4.0,
                0.05 * s1.updateSeconds);
}

TEST_F(PipelineFixture, CommScalesWithBoundariesAndMicroBatches)
{
    const auto a = pipeline_.evaluate(config_, 2, 4);
    const auto b = pipeline_.evaluate(config_, 4, 4);
    EXPECT_NEAR(b.commSeconds / a.commSeconds, 3.0, 0.01);
    const auto c = pipeline_.evaluate(config_, 2, 8);
    // Same per-micro bytes but twice the micro-batches of half size:
    // per-hop bytes halve, count doubles -> roughly equal total.
    EXPECT_NEAR(c.commSeconds, a.commSeconds, 0.1 * a.commSeconds);
}

TEST_F(PipelineFixture, RejectsIndivisibleSplits)
{
    EXPECT_EXIT(pipeline_.evaluate(config_, 5, 4),
                ::testing::ExitedWithCode(1), "requirement failed");
    EXPECT_EXIT(pipeline_.evaluate(config_, 4, 5),
                ::testing::ExitedWithCode(1), "requirement failed");
}

TEST_F(PipelineFixture, DeepPipelineFasterPerDeviceThanSingle)
{
    // 8 stages with micro-batches large enough to keep GEMMs
    // efficient: wall time well under the single-device iteration
    // (that's the point of pipelining).
    BertConfig big = withPhase1(bertLarge(), 64);
    const auto single = pipeline_.evaluate(big, 1, 1);
    const auto piped = pipeline_.evaluate(big, 8, 8);
    EXPECT_LT(piped.totalSeconds, 0.45 * single.totalSeconds);
}

} // namespace
} // namespace bertprof
