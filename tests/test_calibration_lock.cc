/**
 * Calibration lock: pins every headline reproduction number to the
 * band documented in EXPERIMENTS.md. If a DeviceSpec knob or trace
 * emission change drifts a figure out of its band, this suite fails —
 * the guard that keeps the repo's claims and its code in sync.
 */

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "dist/tensor_slicing.h"
#include "nmc/nmc_model.h"

namespace bertprof {
namespace {

class CalibrationLock : public ::testing::Test
{
  protected:
    DeviceSpec spec_ = mi100();
    Characterizer characterizer_{spec_};
};

TEST_F(CalibrationLock, Fig3LambShares)
{
    // Paper bands: 7-10% (B32), ~25% (B4), 16-19% (MP).
    EXPECT_NEAR(characterizer_.run(withPhase1(bertLarge(), 32))
                    .scopeShare("Optimizer"),
                0.072, 0.02);
    EXPECT_NEAR(characterizer_.run(withPhase1(bertLarge(), 4))
                    .scopeShare("Optimizer"),
                0.269, 0.05);
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    EXPECT_NEAR(characterizer_.run(mp).scopeShare("Optimizer"), 0.155,
                0.04);
}

TEST_F(CalibrationLock, Fig4GemmShares)
{
    const auto fp32 = characterizer_.run(withPhase1(bertLarge(), 32));
    EXPECT_NEAR(fp32.gemmShare(), 0.654, 0.06);
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    EXPECT_NEAR(characterizer_.run(mp).gemmShare(), 0.52, 0.06);
    EXPECT_NEAR(fp32.subLayerShare("GeLU"), 0.122, 0.04);
    EXPECT_NEAR(fp32.subLayerShare("DR+RC+LN"), 0.053, 0.03);
}

TEST_F(CalibrationLock, MixedPrecisionSpeedup)
{
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    const double speedup =
        characterizer_.run(withPhase1(bertLarge(), 32)).totalSeconds /
        characterizer_.run(mp).totalSeconds;
    // Paper: FWD/BWD ~2x; whole iteration a bit less.
    EXPECT_NEAR(speedup, 2.15, 0.35);
}

TEST_F(CalibrationLock, Sec4CheckpointingCosts)
{
    BertConfig ckpt = withPhase1(bertLarge(), 32);
    ckpt.checkpointEvery = 6;
    const auto base = characterizer_.run(withPhase1(bertLarge(), 32));
    const auto with = characterizer_.run(ckpt);
    EXPECT_NEAR(static_cast<double>(with.kernelCount) / base.kernelCount,
                1.293, 0.06);
    EXPECT_NEAR(with.totalSeconds / base.totalSeconds, 1.35, 0.08);
}

TEST_F(CalibrationLock, Fig11CommunicationShares)
{
    const CommModel comm(spec_, AllReduceAlgo::Ring);
    DataParallelModel dp(spec_, comm);
    TensorSlicingModel ts(spec_, comm);
    const auto d1 =
        dp.evaluate(withPhase1(bertLarge(), 16), 128, false);
    EXPECT_NEAR(d1.exposedCommSeconds / d1.totalSeconds(), 0.216, 0.05);
    const auto d2 = dp.evaluate(withPhase1(bertLarge(), 16), 128, true);
    EXPECT_LT(d2.exposedCommSeconds / d2.totalSeconds(), 0.08);
    const auto t1 = ts.evaluate(withPhase1(bertLarge(), 16), 2);
    EXPECT_NEAR(t1.exposedCommSeconds / t1.timed.totalSeconds(), 0.119,
                0.04);
    const auto t2 = ts.evaluate(withPhase1(bertLarge(), 64), 8);
    EXPECT_NEAR(t2.exposedCommSeconds / t2.timed.totalSeconds(), 0.44,
                0.06);
}

TEST_F(CalibrationLock, Sec6NmcSpeedup)
{
    NmcOffloadEvaluator evaluator(hbm2BankNmc(), spec_);
    const auto offload = evaluator.evaluate(
        characterizer_.run(withPhase1(bertLarge(), 32)).timed);
    // Paper: ~3.8x.
    EXPECT_NEAR(offload.optimizerSpeedup(), 3.8, 0.5);
    EXPECT_NEAR(offload.endToEndImprovement(), 0.066, 0.025);
}

TEST_F(CalibrationLock, Fig8Phase2AttentionShare)
{
    const auto ph2 = characterizer_.run(withPhase2(bertLarge(), 4));
    const double attn = ph2.subLayerShare("Attn B-GEMM") +
                        ph2.subLayerShare("Scale+Mask+DR+SM");
    // Paper: ~17% at n=512 (we run a couple points hotter).
    EXPECT_NEAR(attn, 0.212, 0.05);
}

TEST_F(CalibrationLock, IterationKernelCountStable)
{
    // ~2.4k kernels per BERT-Large iteration (PyTorch-like order).
    const auto result = characterizer_.run(withPhase1(bertLarge(), 32));
    EXPECT_GT(result.kernelCount, 2000u);
    EXPECT_LT(result.kernelCount, 3000u);
}

TEST_F(CalibrationLock, MegatronScaleLambShare)
{
    // EXPERIMENTS.md's future-scale check: ~36% LAMB share.
    BertConfig mega = bertLarge();
    mega.numLayers = 72;
    mega.dModel = 3072;
    mega.numHeads = 24;
    mega.dFf = 4 * mega.dModel;
    mega.maxPositions = 1024;
    mega = withPhase1(std::move(mega), 4);
    EXPECT_NEAR(characterizer_.run(mega).scopeShare("Optimizer"), 0.363,
                0.06);
}

} // namespace
} // namespace bertprof
