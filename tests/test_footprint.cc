/** Tests for the memory-footprint model. */

#include <gtest/gtest.h>

#include "perf/footprint.h"

namespace bertprof {
namespace {

TEST(Footprint, Fp32TrainingCategoriesScaleWithParams)
{
    const BertConfig config = withPhase1(bertLarge(), 32);
    const MemoryFootprint fp = trainingFootprint(config);
    const std::int64_t params = config.parameterCount();
    EXPECT_EQ(fp.weights, params * 4);
    EXPECT_EQ(fp.gradients, params * 4);
    EXPECT_EQ(fp.optimizerState, params * 8); // LAMB m + v
    EXPECT_GT(fp.activations, 0);
}

TEST(Footprint, MixedPrecisionAddsMasterCopyButHalvesWeights)
{
    BertConfig fp32 = withPhase1(bertLarge(), 32);
    BertConfig mp = fp32;
    mp.precision = Precision::Mixed;
    const auto a = trainingFootprint(fp32);
    const auto b = trainingFootprint(mp);
    EXPECT_EQ(b.weights, a.weights / 2);
    EXPECT_EQ(b.gradients, a.gradients / 2);
    EXPECT_GT(b.optimizerState, a.optimizerState); // + FP32 master
    EXPECT_LT(b.activations, a.activations);       // FP16 activations
}

TEST(Footprint, BertLargeTrainingIsTensOfGiB)
{
    // Sanity: BERT-Large Ph1-B32 FP32 training famously does not fit
    // small GPUs; expect > 10 GiB and < 100 GiB.
    const auto fp = trainingFootprint(withPhase1(bertLarge(), 32));
    EXPECT_GT(fp.total(), 10LL * 1024 * 1024 * 1024);
    EXPECT_LT(fp.total(), 100LL * 1024 * 1024 * 1024);
}

TEST(Footprint, CheckpointingCutsActivationsOnly)
{
    BertConfig base = withPhase1(bertLarge(), 32);
    BertConfig ckpt = base;
    ckpt.checkpointEvery = 6;
    const auto a = trainingFootprint(base);
    const auto b = trainingFootprint(ckpt);
    EXPECT_LT(b.activations, a.activations / 2);
    EXPECT_EQ(b.weights, a.weights);
    EXPECT_EQ(b.optimizerState, a.optimizerState);
}

TEST(Footprint, ActivationsScaleLinearlyWithBatch)
{
    const auto b8 = trainingFootprint(withPhase1(bertLarge(), 8));
    const auto b16 = trainingFootprint(withPhase1(bertLarge(), 16));
    EXPECT_EQ(b16.activations, 2 * b8.activations);
    EXPECT_EQ(b16.weights, b8.weights);
}

TEST(Footprint, ActivationsScaleSuperlinearlyWithSeqLen)
{
    // Score matrices are quadratic in n.
    BertConfig n128 = withPhase1(bertLarge(), 8);
    BertConfig n512 = n128;
    n512.seqLen = 512;
    const auto a = trainingFootprint(n128);
    const auto b = trainingFootprint(n512);
    EXPECT_GT(b.activations, 4 * a.activations);
}

TEST(Footprint, InferenceIsMuchSmallerThanTraining)
{
    const BertConfig config = withPhase1(bertLarge(), 8);
    const auto train = trainingFootprint(config);
    const auto infer = inferenceFootprint(config);
    EXPECT_LT(infer.total(), train.total() / 3);
    EXPECT_EQ(infer.gradients, 0);
    EXPECT_EQ(infer.optimizerState, 0);
}

TEST(Footprint, TensorSlicingDividesParameterMemory)
{
    const BertConfig config = withPhase1(bertLarge(), 32);
    const auto full = tensorSlicedFootprint(config, 1);
    const auto sliced = tensorSlicedFootprint(config, 8);
    EXPECT_LT(sliced.weights, full.weights / 4);
    EXPECT_LT(sliced.optimizerState, full.optimizerState / 4);
    // Activations shrink less (the [T, d] tensors are replicated).
    EXPECT_GT(sliced.activations, full.activations / 8);
    EXPECT_LT(sliced.activations, full.activations);
}

TEST(Footprint, MaxBatchMonotoneInCapacity)
{
    const BertConfig config = withPhase1(bertLarge(), 1);
    const std::int64_t b16 =
        maxBatchThatFits(config, 16LL * 1024 * 1024 * 1024);
    const std::int64_t b32 =
        maxBatchThatFits(config, 32LL * 1024 * 1024 * 1024);
    const std::int64_t b64 =
        maxBatchThatFits(config, 64LL * 1024 * 1024 * 1024);
    EXPECT_LE(b16, b32);
    EXPECT_LE(b32, b64);
    EXPECT_GT(b64, 0);
}

TEST(Footprint, MaxBatchZeroWhenModelAloneDoesNotFit)
{
    // 1 GiB cannot even hold BERT-Large's optimizer state.
    EXPECT_EQ(maxBatchThatFits(withPhase1(bertLarge(), 1),
                               1LL * 1024 * 1024 * 1024),
              0);
}

TEST(Footprint, CheckpointingEnablesLargerBatch)
{
    BertConfig base = withPhase1(bertLarge(), 1);
    BertConfig ckpt = base;
    ckpt.checkpointEvery = 6;
    const std::int64_t capacity = 32LL * 1024 * 1024 * 1024; // MI100
    EXPECT_GT(maxBatchThatFits(ckpt, capacity),
              maxBatchThatFits(base, capacity));
}

TEST(Footprint, DescribeMentionsEveryCategory)
{
    const auto fp = trainingFootprint(withPhase1(bertLarge(), 8));
    const std::string text = describeFootprint(fp);
    for (const char *token : {"w ", "g ", "opt ", "act ", "ws ", "= "})
        EXPECT_NE(text.find(token), std::string::npos) << token;
}

} // namespace
} // namespace bertprof
