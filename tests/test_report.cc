/** Tests for the report builders (breakdowns, top kernels, roofline
 *  scatter, GEMM intensity). */

#include <algorithm>
#include <cctype>
#include <sstream>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/report.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

CharacterizationResult
smallResult()
{
    Characterizer characterizer(mi100());
    return characterizer.run(withPhase1(testing::tinyBertConfig(), 2));
}

TEST(Report, BreakdownTableHasRowPerGroup)
{
    const auto result = smallResult();
    Table table =
        breakdownTable(result.byScope, result.totalSeconds, "scopes");
    EXPECT_EQ(table.rowCount(), result.byScope.size());
}

TEST(Report, AggregateTotalMatchesIterationTime)
{
    const auto result = smallResult();
    EXPECT_NEAR(aggregateTotal(result.byScope), result.totalSeconds,
                1e-12);
}

TEST(Report, TopKernelsGroupsLayersTogether)
{
    const auto result = smallResult();
    Table table = topKernelsTable(result.timed, 50);
    const std::string text = table.render();
    // Per-layer indices are canonicalized: "enc*." appears, "enc0."
    // does not.
    EXPECT_NE(text.find("enc*."), std::string::npos);
    EXPECT_EQ(text.find("enc0."), std::string::npos);
}

TEST(Report, TopKernelsRespectsK)
{
    const auto result = smallResult();
    EXPECT_EQ(topKernelsTable(result.timed, 5).rowCount(), 5u);
    EXPECT_LE(topKernelsTable(result.timed, 500).rowCount(), 500u);
}

TEST(Report, TopKernelsSortedByTime)
{
    // The first row must carry the largest share; shares must be
    // non-increasing. Parse the Share column loosely.
    const auto result = smallResult();
    const std::string text = topKernelsTable(result.timed, 10).render();
    double prev = 1e9;
    int rows = 0;
    for (std::size_t i = 1; i < text.size(); ++i) {
        if (text[i] != '%')
            continue;
        std::size_t start = i;
        while (start > 0 && (std::isdigit(static_cast<unsigned char>(
                                 text[start - 1])) ||
                             text[start - 1] == '.'))
            --start;
        if (start == i)
            continue;
        const double share = std::atof(text.c_str() + start);
        EXPECT_LE(share, prev + 1e-9);
        prev = share;
        ++rows;
    }
    EXPECT_GE(rows, 5);
}

TEST(Report, RooflineScatterSkipsZeroFlopOps)
{
    const auto result = smallResult();
    const CsvWriter csv =
        rooflineScatterCsv(result.timed, mi100());
    const std::string text = csv.render();
    // Gathers move bytes but do no FLOPs; they must be absent.
    EXPECT_EQ(text.find("emb.token.gather"), std::string::npos);
    EXPECT_NE(text.find("fc1.fwd"), std::string::npos);
}

TEST(Report, RooflineScatterAchievedNeverAbovePeak)
{
    const auto result = smallResult();
    const std::string text =
        rooflineScatterCsv(result.timed, mi100()).render();
    // Column order: ..., achieved, attainable, peak.
    std::istringstream lines(text);
    std::string line;
    std::getline(lines, line); // header
    while (std::getline(lines, line)) {
        // Split last three comma-separated fields.
        const std::size_t c3 = line.rfind(',');
        const std::size_t c2 = line.rfind(',', c3 - 1);
        const std::size_t c1 = line.rfind(',', c2 - 1);
        const double achieved = std::atof(line.c_str() + c1 + 1);
        const double attainable = std::atof(line.c_str() + c2 + 1);
        const double peak = std::atof(line.c_str() + c3 + 1);
        EXPECT_LE(achieved, peak * 1.0001) << line;
        EXPECT_LE(attainable, peak * 1.0001) << line;
    }
}

} // namespace
} // namespace bertprof
