/**
 * Tests for the Sec. 7 extensions: fine-tuning task heads and the
 * inference trace, validating the paper's discussion claims — the
 * transformer layers still dominate fine-tuning, the output layer
 * becomes negligible, and inference drops backprop and LAMB while
 * keeping the same GEMM manifestations.
 */

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

TEST(FineTune, SquadHeadHasFarFewerParamsThanPretrainHeads)
{
    const BertConfig pretrain = withPhase1(bertLarge(), 8);
    const BertConfig squad = withSquadFineTune(bertLarge(), 8);
    // Encoder params identical; only the head differs.
    const std::int64_t head_pretrain =
        pretrain.parameterCount() - squad.parameterCount();
    EXPECT_GT(head_pretrain, 1'000'000); // MLM transform + pooler + bias
}

TEST(FineTune, SquadUsesAdamAndSpanHead)
{
    const BertConfig squad = withSquadFineTune(bertLarge(), 8);
    EXPECT_EQ(squad.optimizer, OptimizerKind::Adam);
    EXPECT_EQ(squad.taskHead, TaskHead::SpanPrediction);
    EXPECT_EQ(squad.seqLen, 384);
}

TEST(FineTune, OutputLayerIsNegligible)
{
    // Sec. 7: "the output layer of SQuAD ... a negligible component".
    Characterizer characterizer(mi100());
    const auto result =
        characterizer.run(withSquadFineTune(bertLarge(), 8));
    EXPECT_LT(result.scopeShare("Output"), 0.01);
    EXPECT_GT(result.scopeShare("Transformer"), 0.8);
}

TEST(FineTune, TransformerBreakdownMatchesPretraining)
{
    // Sec. 7: the transformer-internal breakdown carries over.
    Characterizer characterizer(mi100());
    const auto pretrain =
        characterizer.run(withPhase1(bertLarge(), 8));
    BertConfig ft_config = withClassificationFineTune(bertLarge(), 8);
    const auto finetune = characterizer.run(ft_config);
    for (const char *group : {"FC GEMM", "GeLU", "Attn Linear"}) {
        const double a = pretrain.subLayerShare(group) /
                         pretrain.scopeShare("Transformer");
        const double b = finetune.subLayerShare(group) /
                         finetune.scopeShare("Transformer");
        EXPECT_NEAR(a, b, 0.05) << group;
    }
}

TEST(FineTune, ClassificationHeadEmitsClassifierGemm)
{
    BertTraceBuilder builder(
        withClassificationFineTune(bertLarge(), 16, 5));
    bool found = false;
    for (const auto &op : builder.buildForward().ops) {
        if (op.name == "classifier.fwd") {
            found = true;
            EXPECT_EQ(op.gemm.m, 5);
            EXPECT_EQ(op.gemm.n, 16);
            EXPECT_EQ(op.gemm.k, 1024);
        }
        EXPECT_EQ(op.name.find("mlm."), std::string::npos);
    }
    EXPECT_TRUE(found);
}

TEST(FineTune, SpanHeadOperatesOnAllTokens)
{
    const BertConfig squad = withSquadFineTune(bertLarge(), 8);
    BertTraceBuilder builder(squad);
    for (const auto &op : builder.buildForward().ops) {
        if (op.name == "qa.fwd") {
            EXPECT_EQ(op.gemm.m, 2);
            EXPECT_EQ(op.gemm.n, squad.tokens());
            return;
        }
    }
    FAIL() << "qa.fwd not emitted";
}

TEST(FineTune, UpdatePhaseShrinksWithSimplerHead)
{
    const auto pretrain_update =
        BertTraceBuilder(withPhase1(bertLarge(), 8)).buildUpdate();
    const auto squad_update =
        BertTraceBuilder(withSquadFineTune(bertLarge(), 8)).buildUpdate();
    EXPECT_LT(squad_update.totalBytes(), pretrain_update.totalBytes());
}

TEST(Inference, NoBackwardOrUpdateKernels)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 1));
    const OpTrace inference = builder.buildInference();
    for (const auto &op : inference.ops) {
        EXPECT_NE(op.phase, Phase::Bwd) << op.name;
        EXPECT_NE(op.phase, Phase::Update) << op.name;
    }
}

TEST(Inference, SameGemmManifestationsAsTraining)
{
    // Sec. 7 / Takeaway 5: inference at B=1 still runs matrix-matrix
    // ops with the same shapes as the training forward pass.
    BertTraceBuilder builder(withPhase1(bertLarge(), 1));
    const OpTrace inference = builder.buildInference();
    const OpTrace forward = builder.buildForward();
    std::vector<std::string> inf_gemms, fwd_gemms;
    for (const auto &op : inference.ops)
        if (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm)
            inf_gemms.push_back(op.name + ":" + op.gemm.label());
    for (const auto &op : forward.ops)
        if (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm)
            fwd_gemms.push_back(op.name + ":" + op.gemm.label());
    EXPECT_EQ(inf_gemms, fwd_gemms);
}

TEST(Inference, BreakdownSimilarToForwardShareOfTraining)
{
    Characterizer characterizer(mi100());
    const BertConfig config = withPhase1(bertLarge(), 8);
    BertTraceBuilder builder(config);
    const auto inference =
        characterizer.runTrace(config, builder.buildInference());
    const auto training = characterizer.run(config);
    // GEMM share of inference tracks the training forward pass.
    EXPECT_NEAR(inference.gemmShare(), training.gemmShare(), 0.15);
    EXPECT_EQ(inference.scopeShare("Optimizer"), 0.0);
}

} // namespace
} // namespace bertprof
