/**
 * Fused-kernel parity suite (ISSUE 8 satellite): every fused kernel
 * against its unfused oracle chain at 1 and 8 threads, training
 * forward/backward parity through EncoderLayer, eval logits parity
 * through BertClassifier, and serve end-to-end parity with the graph
 * executor engaged. The parity class per kernel (bitwise versus
 * tolerance) is the contract documented in ops/fused.h.
 */

#include <cmath>
#include <cstring>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "graph/encoder_exec.h"
#include "nn/encoder_layer.h"
#include "nn/graph_hook.h"
#include "ops/activation.h"
#include "ops/elementwise.h"
#include "ops/fused.h"
#include "ops/gemm.h"
#include "ops/layernorm.h"
#include "ops/reshape.h"
#include "ops/softmax.h"
#include "runtime/config.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "telemetry/metrics.h"
#include "test_helpers.h"

namespace bertprof {
namespace {

using ::bertprof::testing::tinyBertConfig;

constexpr std::int64_t kPadId = 3;

/** Restore the process-wide knobs this suite sweeps. */
struct KnobGuard {
    ~KnobGuard()
    {
        clearFusionModeOverride();
        clearGemmImplOverride();
        setNumThreads(0);
    }
};

bool
bitwiseEqual(const Tensor &a, const Tensor &b)
{
    return a.shape() == b.shape() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.numel()) *
                           sizeof(float)) == 0;
}

const int kThreadSweep[] = {1, 8};

TEST(FusedKernels, BiasGeluBitwiseMatchesUnfused)
{
    KnobGuard guard;
    Rng rng(11);
    Tensor in(Shape({64, 48}));
    Tensor bias(Shape({48}));
    in.fillNormal(rng);
    bias.fillNormal(rng);

    for (int threads : kThreadSweep) {
        setNumThreads(threads);
        Tensor pre_ref(in.shape());
        Tensor out_ref(in.shape());
        biasForward(in, bias, pre_ref);
        geluForward(pre_ref, out_ref);

        Tensor out(in.shape());
        fusedBiasGeluForward(in, bias, out);
        EXPECT_TRUE(bitwiseEqual(out, out_ref)) << threads << " threads";

        Tensor pre(in.shape());
        Tensor out2(in.shape());
        fusedBiasGeluForwardWithPre(in, bias, pre, out2);
        EXPECT_TRUE(bitwiseEqual(pre, pre_ref)) << threads << " threads";
        EXPECT_TRUE(bitwiseEqual(out2, out_ref)) << threads << " threads";
    }
}

TEST(FusedKernels, ResidualLayerNormBitwiseMatchesUnfused)
{
    KnobGuard guard;
    Rng rng(12);
    Tensor a(Shape({32, 64}));
    Tensor b(Shape({32, 64}));
    Tensor gamma(Shape({64}));
    Tensor beta(Shape({64}));
    a.fillNormal(rng);
    b.fillNormal(rng);
    gamma.fillNormal(rng);
    beta.fillNormal(rng);

    for (int threads : kThreadSweep) {
        setNumThreads(threads);
        Tensor sum_ref(a.shape());
        Tensor out_ref(a.shape());
        Tensor mean_ref(Shape({32}));
        Tensor rstd_ref(Shape({32}));
        addForward(a, b, sum_ref);
        layerNormForward(sum_ref, gamma, beta, out_ref, mean_ref,
                         rstd_ref);

        Tensor out(a.shape());
        Tensor mean(Shape({32}));
        Tensor rstd(Shape({32}));
        fusedResidualLayerNormForward(a, b, gamma, beta, out, mean, rstd);
        EXPECT_TRUE(bitwiseEqual(out, out_ref)) << threads << " threads";
        EXPECT_TRUE(bitwiseEqual(mean, mean_ref));
        EXPECT_TRUE(bitwiseEqual(rstd, rstd_ref));

        Tensor sum(a.shape());
        Tensor out2(a.shape());
        fusedResidualLayerNormForwardWithSum(a, b, gamma, beta, sum, out2,
                                             mean, rstd);
        EXPECT_TRUE(bitwiseEqual(sum, sum_ref)) << threads << " threads";
        EXPECT_TRUE(bitwiseEqual(out2, out_ref));
    }
}

TEST(FusedKernels, QkvForwardBitwiseMatchesUnfusedOnBothEngines)
{
    KnobGuard guard;
    const std::int64_t batch = 2, seq = 16, d_model = 32;
    const std::int64_t heads = 4;
    Rng rng(13);
    Tensor x(Shape({batch * seq, d_model}));
    x.fillNormal(rng);
    Tensor w[3] = {Tensor(Shape({d_model, d_model})),
                   Tensor(Shape({d_model, d_model})),
                   Tensor(Shape({d_model, d_model}))};
    Tensor b[3] = {Tensor(Shape({d_model})), Tensor(Shape({d_model})),
                   Tensor(Shape({d_model}))};
    for (int i = 0; i < 3; ++i) {
        w[i].fillNormal(rng);
        b[i].fillNormal(rng);
    }

    const Shape split_shape({batch * heads, seq, d_model / heads});
    for (GemmImpl impl : {GemmImpl::Packed, GemmImpl::Reference}) {
        setGemmImpl(impl);
        for (int threads : kThreadSweep) {
            setNumThreads(threads);
            Tensor ref[3] = {Tensor(split_shape), Tensor(split_shape),
                             Tensor(split_shape)};
            for (int i = 0; i < 3; ++i) {
                Tensor proj(Shape({batch * seq, d_model}));
                gemm(x, w[i], proj, false, true);
                biasForward(proj, b[i], proj);
                splitHeads(proj, batch, seq, heads, ref[i]);
            }

            Tensor q3d(split_shape), k3d(split_shape), v3d(split_shape);
            fusedQkvForward(x, w[0], w[1], w[2], b[0], b[1], b[2], batch,
                            seq, heads, q3d, k3d, v3d);
            EXPECT_TRUE(bitwiseEqual(q3d, ref[0]))
                << gemmImplName(impl) << " " << threads << " threads";
            EXPECT_TRUE(bitwiseEqual(k3d, ref[1]))
                << gemmImplName(impl) << " " << threads << " threads";
            EXPECT_TRUE(bitwiseEqual(v3d, ref[2]))
                << gemmImplName(impl) << " " << threads << " threads";
        }
    }
}

TEST(FusedKernels, QkvBackwardWgradBitwiseDgradClose)
{
    KnobGuard guard;
    const std::int64_t rows = 24, d_model = 32;
    Rng rng(14);
    Tensor x(Shape({rows, d_model}));
    x.fillNormal(rng);
    Tensor d[3] = {Tensor(Shape({rows, d_model})),
                   Tensor(Shape({rows, d_model})),
                   Tensor(Shape({rows, d_model}))};
    Tensor w[3] = {Tensor(Shape({d_model, d_model})),
                   Tensor(Shape({d_model, d_model})),
                   Tensor(Shape({d_model, d_model}))};
    for (int i = 0; i < 3; ++i) {
        d[i].fillNormal(rng);
        w[i].fillNormal(rng);
    }

    for (int threads : kThreadSweep) {
        setNumThreads(threads);
        // Oracle: exactly what three Linear::backward calls run.
        Tensor dw_ref[3], db_ref[3];
        Tensor dx_ref(x.shape());
        dx_ref.fill(0.0f);
        for (int i = 0; i < 3; ++i) {
            dw_ref[i] = Tensor(Shape({d_model, d_model}));
            db_ref[i] = Tensor(Shape({d_model}));
            gemm(d[i], x, dw_ref[i], true, false);
            biasBackward(d[i], db_ref[i]);
            Tensor dxi(x.shape());
            gemm(d[i], w[i], dxi, false, false);
            accumulate(dx_ref, dxi);
        }

        Tensor dw[3] = {Tensor(Shape({d_model, d_model})),
                        Tensor(Shape({d_model, d_model})),
                        Tensor(Shape({d_model, d_model}))};
        Tensor db[3] = {Tensor(Shape({d_model})), Tensor(Shape({d_model})),
                        Tensor(Shape({d_model}))};
        Tensor dx(x.shape());
        fusedQkvBackward(d[0], d[1], d[2], x, w[0], w[1], w[2], dw[0],
                         dw[1], dw[2], db[0], db[1], db[2], dx);

        for (int i = 0; i < 3; ++i) {
            EXPECT_TRUE(bitwiseEqual(dw[i], dw_ref[i]))
                << "proj " << i << " at " << threads << " threads";
            EXPECT_TRUE(bitwiseEqual(db[i], db_ref[i]))
                << "proj " << i << " at " << threads << " threads";
        }
        // dx: one k=3H GEMM versus three k=H GEMMs + adds — same
        // value, different association.
        EXPECT_LT(maxAbsDiff(dx, dx_ref), 1e-4) << threads << " threads";
    }
}

TEST(FusedKernels, AttentionEvalCloseToUnfusedChain)
{
    KnobGuard guard;
    const std::int64_t batch = 2, seq = 12, d_model = 32;
    const std::int64_t heads = 4, dh = d_model / heads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
    Rng rng(15);
    const Shape split_shape({batch * heads, seq, dh});
    Tensor q3d(split_shape), k3d(split_shape), v3d(split_shape);
    q3d.fillNormal(rng);
    k3d.fillNormal(rng);
    v3d.fillNormal(rng);

    // Broadcast [n, n] mask and per-sequence [B, n, n] mask, each
    // with a masked-out tail (large negative additive values).
    Tensor mask2(Shape({seq, seq}));
    for (std::int64_t i = 0; i < seq; ++i)
        for (std::int64_t j = 0; j < seq; ++j)
            mask2.at(i, j) = (j >= seq - 2) ? -1e9f : 0.0f;
    Tensor mask3(Shape({batch, seq, seq}));
    for (std::int64_t s = 0; s < batch; ++s)
        for (std::int64_t i = 0; i < seq; ++i)
            for (std::int64_t j = 0; j < seq; ++j)
                mask3.at(s * seq * seq + i * seq + j) =
                    (j >= seq - 1 - s) ? -1e9f : 0.0f;

    for (const Tensor *mask : {&mask2, &mask3}) {
        const bool per_seq = mask->shape().rank() == 3;
        for (int threads : kThreadSweep) {
            setNumThreads(threads);
            Tensor scores(Shape({batch * heads, seq, seq}));
            batchedGemm(q3d, k3d, scores, false, true);
            scaleForward(scores, scale, scores);
            if (per_seq)
                batchMaskAddForward(scores, *mask, heads, scores);
            else
                maskAddForward(scores, *mask, scores);
            Tensor probs(scores.shape());
            softmaxForward(scores, probs);
            Tensor ctx_ref(split_shape);
            batchedGemm(probs, v3d, ctx_ref);

            Tensor ctx(split_shape);
            fusedAttentionEvalForward(q3d, k3d, v3d, *mask, heads, scale,
                                      ctx);
            EXPECT_LT(maxAbsDiff(ctx, ctx_ref), 1e-5)
                << (per_seq ? "per-seq" : "broadcast") << " mask at "
                << threads << " threads";
        }
    }
}

/** Two identically-seeded encoder layers, one forward each. */
struct LayerPair {
    NnRuntime rt_a, rt_b;
    EncoderLayer a, b;

    LayerPair()
        : a("enc", 32, 4, 64, &rt_a), b("enc", 32, 4, 64, &rt_b)
    {
        Rng init_a(7), init_b(7);
        a.initialize(init_a);
        b.initialize(init_b);
        rt_a.dropoutP = 0.1f;
        rt_b.dropoutP = 0.1f;
    }
};

TEST(FusionTraining, ForwardBitwiseAndGradsMatchUnfused)
{
    KnobGuard guard;
    // The eager fused path only (no graph executor on training
    // forwards; the hook is eval-only by contract).
    for (int threads : kThreadSweep) {
        setNumThreads(threads);
        LayerPair pair;
        Rng data(21);
        Tensor x(Shape({2 * 16, 32}));
        x.fillNormal(data);
        Tensor mask(Shape({16, 16}));

        setFusionMode(FusionMode::Off);
        Tensor y_ref = pair.a.forward(x, mask, 2, 16);
        setFusionMode(FusionMode::On);
        Tensor y = pair.b.forward(x, mask, 2, 16);
        // Same dropout RNG stream, all forward fused kernels bitwise.
        EXPECT_TRUE(bitwiseEqual(y, y_ref)) << threads << " threads";

        Tensor dout(y.shape());
        Rng grad_rng(22);
        dout.fillNormal(grad_rng);
        pair.a.zeroGrad();
        pair.b.zeroGrad();
        setFusionMode(FusionMode::Off);
        Tensor dx_ref = pair.a.backward(dout);
        setFusionMode(FusionMode::On);
        Tensor dx = pair.b.backward(dout);

        // All parameter grads are bitwise (fused QKV wgrad/bias share
        // the oracle's accumulation order); dx crosses the fused QKV
        // dgrad, which reassociates k, so it is tolerance-only.
        std::vector<Parameter *> pa = pair.a.parameters();
        std::vector<Parameter *> pb = pair.b.parameters();
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t i = 0; i < pa.size(); ++i)
            EXPECT_TRUE(bitwiseEqual(pb[i]->grad, pa[i]->grad))
                << pa[i]->name << " at " << threads << " threads";
        EXPECT_LT(maxAbsDiff(dx, dx_ref), 1e-4) << threads << " threads";
    }
}

TEST(FusionEval, EncoderLayerFusedCloseToUnfused)
{
    KnobGuard guard;
    installEncoderGraphExec(nullptr); // eager fused path
    for (int threads : kThreadSweep) {
        setNumThreads(threads);
        LayerPair pair;
        pair.a.setTraining(false);
        pair.b.setTraining(false);
        Rng data(23);
        Tensor x(Shape({2 * 16, 32}));
        x.fillNormal(data);
        Tensor mask(Shape({16, 16}));

        setFusionMode(FusionMode::Off);
        Tensor y_ref = pair.a.forward(x, mask, 2, 16);
        setFusionMode(FusionMode::On);
        Tensor y = pair.b.forward(x, mask, 2, 16);
        // Fused attention reassociates the score/context dots.
        EXPECT_LT(maxAbsDiff(y, y_ref), 1e-4) << threads << " threads";
    }
}

/** Eval logits of a tiny classifier over a fixed batch. */
Tensor
classifierLogits(BertClassifier &clf, const BertConfig &config)
{
    const std::int64_t batch = 2, seq = 16;
    std::vector<std::int64_t> tokens, segments;
    Rng rng(31);
    for (std::int64_t i = 0; i < batch * seq; ++i) {
        tokens.push_back(rng.uniformInt(0, config.vocabSize - 1));
        segments.push_back(i % 2);
    }
    const std::vector<std::int64_t> lengths = {seq, seq - 3};
    return clf.forwardLogitsEval(tokens, segments, batch, seq, lengths);
}

TEST(FusionEval, ClassifierLogitsCloseAndThreadInvariant)
{
    KnobGuard guard;
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(32);
    clf.initialize(init);
    clf.setTraining(false);
    graph::ensureEncoderGraphExecInstalled();

    setNumThreads(1);
    setFusionMode(FusionMode::Off);
    Tensor ref = classifierLogits(clf, config);
    setFusionMode(FusionMode::On);
    Tensor fused1 = classifierLogits(clf, config);
    EXPECT_LT(maxAbsDiff(fused1, ref), 1e-4);

    // Fused eval is bitwise thread-count invariant (deterministic
    // parallelFor chunking), like every other kernel in the repo.
    setNumThreads(8);
    Tensor fused8 = classifierLogits(clf, config);
    EXPECT_TRUE(bitwiseEqual(fused8, fused1));
    setFusionMode(FusionMode::Off);
    Tensor ref8 = classifierLogits(clf, config);
    EXPECT_TRUE(bitwiseEqual(ref8, ref));
}

TEST(FusionServe, EndToEndLogitsParityAndArenaGauge)
{
    KnobGuard guard;
    const BertConfig config = tinyBertConfig();
    NnRuntime rt;
    BertClassifier clf(config, &rt);
    Rng init(41);
    clf.initialize(init);
    clf.setTraining(false);
    ClassifierEngine engine(clf, kPadId);

    const BucketSpec buckets({8, 16, 32});
    ServeOptions options;
    options.maxBatch = 4;
    options.maxWaitUs = 200;

    auto serve_once = [&](FusionMode mode) {
        setFusionMode(mode);
        Rng body(42);
        std::vector<std::vector<float>> logits;
        InferenceServer server(engine, buckets, options);
        std::vector<std::future<InferReply>> futures;
        for (std::uint64_t id = 0; id < 10; ++id) {
            InferRequest req = syntheticRequest(
                body, id, 4 + static_cast<std::int64_t>(id),
                config.vocabSize);
            futures.push_back(server.submit(req));
        }
        for (auto &f : futures) {
            InferReply reply = f.get();
            EXPECT_TRUE(reply.ok);
            logits.push_back(reply.logits);
        }
        return logits;
    };

    const auto off = serve_once(FusionMode::Off);
    const auto on = serve_once(FusionMode::On);
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        ASSERT_EQ(off[i].size(), on[i].size());
        for (std::size_t j = 0; j < off[i].size(); ++j)
            EXPECT_NEAR(on[i][j], off[i][j], 1e-4)
                << "request " << i << " logit " << j;
    }

    // The fused run went through the graph executor (the engine ctor
    // installed it); its arena high-water mark is live telemetry.
    // (Peak-below-sum is asserted per plan in test_graph; here the
    // peak spans every shape this process ran, so only >0 is sound.)
    graph::EncoderExec *exec = graph::ensureEncoderGraphExecInstalled();
    EXPECT_GT(exec->arenaPeakBytes(), 0);
    EXPECT_GT(
        MetricsRegistry::instance().gauge("graph.arena_peak_bytes").value(),
        0.0);
}

} // namespace
} // namespace bertprof
