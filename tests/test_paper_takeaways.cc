/**
 * The paper's numbered observations and takeaways as one consolidated
 * test suite — every claim of Table 1 (and the five Obs.) re-derived
 * from this library's models and asserted. Companion to
 * bench_table1_takeaways (which prints; this enforces).
 */

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "dist/comm_model.h"
#include "dist/data_parallel.h"
#include "dist/tensor_slicing.h"
#include "perf/cost_model.h"
#include "perf/roofline.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

class PaperTakeaways : public ::testing::Test
{
  protected:
    DeviceSpec spec_ = mi100();
    Characterizer characterizer_{spec_};
    CharacterizationResult
    run(const BertConfig &config, TraceOptions options = {})
    {
        return characterizer_.run(config, options);
    }
};

TEST_F(PaperTakeaways, Obs1TransformerLayersDominate)
{
    for (std::int64_t batch : {4L, 32L}) {
        const auto result = run(withPhase1(bertLarge(), batch));
        EXPECT_GT(result.scopeShare("Transformer"), 0.65);
        EXPECT_LT(result.scopeShare("Embedding"), 0.02);
    }
}

TEST_F(PaperTakeaways, Takeaway1LambSecondHighestAndGrowsWithFewerTokens)
{
    const auto b32 = run(withPhase1(bertLarge(), 32));
    EXPECT_GT(b32.scopeShare("Optimizer"), b32.scopeShare("Output"));
    EXPECT_GT(b32.scopeShare("Optimizer"), b32.scopeShare("Embedding"));
    const auto b4 = run(withPhase1(bertLarge(), 4));
    EXPECT_GT(b4.scopeShare("Optimizer"), 0.2);
}

TEST_F(PaperTakeaways, Takeaway2LambGrowsWithMixedPrecision)
{
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    EXPECT_GT(run(mp).scopeShare("Optimizer"),
              run(withPhase1(bertLarge(), 32)).scopeShare("Optimizer"));
}

TEST_F(PaperTakeaways, Obs2Takeaway3LinearFcDominateAndShrinkUnderMp)
{
    const auto fp32 = run(withPhase1(bertLarge(), 32));
    const double linear_fc_32 = fp32.subLayerShare("Attn Linear") +
                                fp32.subLayerShare("FC GEMM");
    EXPECT_GT(linear_fc_32, 0.5);
    BertConfig mp_cfg = withPhase1(bertLarge(), 32);
    mp_cfg.precision = Precision::Mixed;
    const auto mp = run(mp_cfg);
    EXPECT_LT(mp.subLayerShare("Attn Linear") +
                  mp.subLayerShare("FC GEMM"),
              linear_fc_32);
}

TEST_F(PaperTakeaways, Takeaway4AttentionOpsAreSmall)
{
    const auto result = run(withPhase1(bertLarge(), 32));
    EXPECT_LT(result.subLayerShare("Attn B-GEMM") +
                  result.subLayerShare("Scale+Mask+DR+SM"),
              0.15);
}

TEST_F(PaperTakeaways, Takeaway5BatchOfOneIsStillMatrixMatrix)
{
    BertTraceBuilder builder(withPhase1(bertLarge(), 1));
    for (const auto &op : builder.buildForward().ops) {
        if (op.scope != LayerScope::Transformer)
            continue;
        if (op.kind == OpKind::Gemm || op.kind == OpKind::BatchedGemm) {
            EXPECT_GT(op.gemm.m, 1);
            EXPECT_GT(op.gemm.n, 1);
        }
    }
}

TEST_F(PaperTakeaways, Takeaway6AttentionBGemmsAreBandwidthHungry)
{
    KernelCostModel cost(spec_);
    const auto result = run(withPhase1(bertLarge(), 32));
    double bgemm_demand = 0.0, fc_demand = 0.0;
    int bgemm_n = 0, fc_n = 0;
    for (const auto &timed : result.timed.ops) {
        if (timed.op.layerIndex != 0)
            continue;
        if (timed.op.kind == OpKind::BatchedGemm) {
            bgemm_demand += cost.bandwidthDemand(timed.op);
            ++bgemm_n;
        } else if (timed.op.kind == OpKind::Gemm &&
                   timed.op.sub == SubLayer::FcGemm) {
            fc_demand += cost.bandwidthDemand(timed.op);
            ++fc_n;
        }
    }
    EXPECT_GT(bgemm_demand / bgemm_n, 2.5 * (fc_demand / fc_n));
}

TEST_F(PaperTakeaways, Takeaway7LambReadsFourTimesModel)
{
    const BertConfig config = withPhase1(bertLarge(), 32);
    BertTraceBuilder builder(config);
    std::int64_t stage1_reads = 0;
    for (const auto &op : builder.buildUpdate().ops)
        if (op.sub == SubLayer::LambStage1)
            stage1_reads += op.stats.bytesRead;
    EXPECT_EQ(stage1_reads, 4 * config.parameterCount() * 4);
}

TEST_F(PaperTakeaways, Takeaways8And9MemoryBoundOpsLargeAndGrowWithMp)
{
    auto non_gemm_share = [](const CharacterizationResult &result) {
        return 1.0 - result.gemmShare();
    };
    const auto fp32 = run(withPhase1(bertLarge(), 32));
    EXPECT_GT(non_gemm_share(fp32), 0.25);
    BertConfig mp_cfg = withPhase1(bertLarge(), 32);
    mp_cfg.precision = Precision::Mixed;
    EXPECT_GT(non_gemm_share(run(mp_cfg)), non_gemm_share(fp32));
    // And each of those groups is individually memory bound at peak.
    BertTraceBuilder builder(withPhase1(bertLarge(), 32));
    for (const auto &op : builder.buildUpdate().ops)
        EXPECT_TRUE(memoryBoundAtPeak(spec_, op)) << op.name;
}

TEST_F(PaperTakeaways, Obs3Takeaway10InputSizeEffects)
{
    // B affects layers proportionally; n raises attention share.
    const auto b8 = run(withPhase1(bertLarge(), 8));
    const auto b32 = run(withPhase1(bertLarge(), 32));
    EXPECT_NEAR(b8.subLayerShare("FC GEMM"),
                b32.subLayerShare("FC GEMM"), 0.08);
    const auto ph2 = run(withPhase2(bertLarge(), 4));
    EXPECT_GT(ph2.subLayerShare("Attn B-GEMM"),
              1.5 * b32.subLayerShare("Attn B-GEMM"));
}

TEST_F(PaperTakeaways, Obs4Takeaway11ModelSizeEffects)
{
    // Layer count: linear runtime, stable breakdown.
    BertConfig n12 = withPhase1(bertLarge(), 8);
    n12.numLayers = 12;
    const auto shallow = run(n12);
    const auto deep = run(withPhase1(bertLarge(), 8));
    EXPECT_NEAR(deep.totalSeconds / shallow.totalSeconds, 2.0, 0.3);
    // Width: GEMM and LAMB shares grow C2 -> C3.
    const auto c2 = run(withPhase1(scalingC2(), 16));
    const auto c3 = run(withPhase1(scalingC3(), 16));
    EXPECT_GT(c3.gemmShare(), c2.gemmShare());
    EXPECT_GT(c3.scopeShare("Optimizer"), c2.scopeShare("Optimizer"));
}

TEST_F(PaperTakeaways, Obs5DataParallelOverlapsCommunication)
{
    const CommModel comm(spec_, AllReduceAlgo::Ring);
    DataParallelModel dp(spec_, comm);
    const auto d2 = dp.evaluate(withPhase1(bertLarge(), 16), 128, true);
    EXPECT_LT(d2.exposedCommSeconds, 0.25 * d2.totalCommSeconds);
}

TEST_F(PaperTakeaways, Takeaways12And13TensorSlicingScaling)
{
    const CommModel comm(spec_, AllReduceAlgo::Ring);
    TensorSlicingModel ts(spec_, comm);
    const auto t1 = ts.evaluate(withPhase1(bertLarge(), 16), 2);
    const auto t2 = ts.evaluate(withPhase1(bertLarge(), 64), 8);
    auto lamb_share = [](const DistributedProfile &profile) {
        auto scopes = profile.timed.byScope();
        return scopes.at("Optimizer").seconds /
               profile.timed.totalSeconds();
    };
    EXPECT_LT(lamb_share(t2), lamb_share(t1));
    EXPECT_GT(t2.exposedCommSeconds / t2.timed.totalSeconds(),
              t1.exposedCommSeconds / t1.timed.totalSeconds());
}

TEST_F(PaperTakeaways, DenseMlmPutsOutputLayerInPaperBand)
{
    TraceOptions dense;
    dense.denseMlmLogits = true;
    const auto result = run(withPhase1(bertLarge(), 32), dense);
    EXPECT_GT(result.scopeShare("Output"), 0.03);
    EXPECT_LT(result.scopeShare("Output"), 0.08);
}

} // namespace
} // namespace bertprof
