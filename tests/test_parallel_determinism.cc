/**
 * Determinism contract of the parallel runtime: every parallelized
 * kernel must produce bitwise-identical tensors no matter how many
 * threads execute it. Each case runs the same computation under 1 and
 * 8 threads (and one intermediate count) and compares raw bits —
 * EXPECT_EQ on floats, not EXPECT_NEAR.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "ops/dropout.h"
#include "ops/elementwise.h"
#include "ops/gemm.h"
#include "ops/layernorm.h"
#include "ops/softmax.h"
#include "optim/adam.h"
#include "optim/lamb.h"
#include "runtime/config.h"
#include "util/rng.h"

namespace bertprof {
namespace {

/** Bitwise tensor equality (no float tolerance). */
::testing::AssertionResult
bitsEqual(const Tensor &a, const Tensor &b)
{
    if (a.numel() != b.numel())
        return ::testing::AssertionFailure() << "numel mismatch";
    if (std::memcmp(a.data(), b.data(),
                    static_cast<std::size_t>(a.numel()) * sizeof(float)) !=
        0) {
        for (std::int64_t i = 0; i < a.numel(); ++i) {
            if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(float)) != 0)
                return ::testing::AssertionFailure()
                       << "first bit difference at flat index " << i << ": "
                       << a.data()[i] << " vs " << b.data()[i];
        }
    }
    return ::testing::AssertionSuccess();
}

class ParallelDeterminism : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        setNumThreads(0);
        clearGemmImplOverride();
    }
};

TEST_F(ParallelDeterminism, GemmBitwiseAcrossThreadCounts)
{
    Rng rng(101);
    Tensor a(Shape({129, 193})), b(Shape({193, 87}));
    a.fillNormal(rng);
    b.fillNormal(rng);

    setNumThreads(1);
    Tensor c1(Shape({129, 87}));
    gemm(a, b, c1, false, false, 1.25f, 0.0f);

    for (const int n : {4, 8}) {
        setNumThreads(n);
        Tensor cn(Shape({129, 87}));
        gemm(a, b, cn, false, false, 1.25f, 0.0f);
        EXPECT_TRUE(bitsEqual(c1, cn)) << "threads=" << n;
    }
}

TEST_F(ParallelDeterminism, PackedGemmBitwiseAcrossThreadCounts)
{
    // The packed engine with shapes that straddle its MC/NC/KC block
    // boundaries and both transposes in play — the row partition must
    // not leak into any output bit.
    setGemmImpl(GemmImpl::Packed);
    Rng rng(1101);
    const std::int64_t m = 250, n = 173, k = 311;
    Tensor a(Shape({k, m})), b(Shape({n, k}));
    a.fillNormal(rng);
    b.fillNormal(rng);

    setNumThreads(1);
    Tensor c1(Shape({m, n}));
    gemm(a, b, c1, true, true, -0.75f, 0.0f);

    for (const int t : {2, 4, 8}) {
        setNumThreads(t);
        Tensor cn(Shape({m, n}));
        gemm(a, b, cn, true, true, -0.75f, 0.0f);
        EXPECT_TRUE(bitsEqual(c1, cn)) << "threads=" << t;
    }
}

TEST_F(ParallelDeterminism, PackedBatchedGemmBitwiseAcrossThreadCounts)
{
    setGemmImpl(GemmImpl::Packed);
    Rng rng(1202);
    const std::int64_t batch = 12, m = 107, k = 64, n = 107;
    Tensor a(Shape({batch, m, k})), b(Shape({batch, n, k}));
    a.fillNormal(rng);
    b.fillNormal(rng);

    setNumThreads(1);
    Tensor c1(Shape({batch, m, n}));
    batchedGemm(a, b, c1, false, true);

    setNumThreads(8);
    Tensor c8(Shape({batch, m, n}));
    batchedGemm(a, b, c8, false, true);
    EXPECT_TRUE(bitsEqual(c1, c8));
}

TEST_F(ParallelDeterminism, BatchedGemmBitwiseAcrossThreadCounts)
{
    Rng rng(202);
    // The paper's attention-score shape family: B*h batched small GEMMs.
    const std::int64_t batch = 24, m = 32, k = 16, n = 32;
    Tensor a(Shape({batch, m, k})), b(Shape({batch, k, n}));
    a.fillNormal(rng);
    b.fillNormal(rng);

    setNumThreads(1);
    Tensor c1(Shape({batch, m, n}));
    batchedGemm(a, b, c1);

    setNumThreads(8);
    Tensor c8(Shape({batch, m, n}));
    batchedGemm(a, b, c8);
    EXPECT_TRUE(bitsEqual(c1, c8));
}

TEST_F(ParallelDeterminism, LayerNormForwardBackwardBitwise)
{
    Rng rng(303);
    const std::int64_t rows = 257, cols = 96;
    Tensor x(Shape({rows, cols})), gamma(Shape({cols})), beta(Shape({cols}));
    Tensor dout(Shape({rows, cols}));
    x.fillNormal(rng);
    gamma.fillNormal(rng);
    beta.fillNormal(rng);
    dout.fillNormal(rng);

    auto run = [&](Tensor &y, Tensor &mean, Tensor &rstd, Tensor &din,
                   Tensor &dgamma, Tensor &dbeta) {
        layerNormForward(x, gamma, beta, y, mean, rstd, 1e-5f);
        layerNormBackward(x, gamma, mean, rstd, dout, din, dgamma, dbeta);
    };

    setNumThreads(1);
    Tensor y1(Shape({rows, cols})), mean1(Shape({rows})),
        rstd1(Shape({rows})), din1(Shape({rows, cols})),
        dgamma1(Shape({cols})), dbeta1(Shape({cols}));
    run(y1, mean1, rstd1, din1, dgamma1, dbeta1);

    setNumThreads(8);
    Tensor y8(Shape({rows, cols})), mean8(Shape({rows})),
        rstd8(Shape({rows})), din8(Shape({rows, cols})),
        dgamma8(Shape({cols})), dbeta8(Shape({cols}));
    run(y8, mean8, rstd8, din8, dgamma8, dbeta8);

    EXPECT_TRUE(bitsEqual(y1, y8));
    EXPECT_TRUE(bitsEqual(mean1, mean8));
    EXPECT_TRUE(bitsEqual(rstd1, rstd8));
    EXPECT_TRUE(bitsEqual(din1, din8));
    EXPECT_TRUE(bitsEqual(dgamma1, dgamma8));
    EXPECT_TRUE(bitsEqual(dbeta1, dbeta8));
}

TEST_F(ParallelDeterminism, SoftmaxAndBiasBackwardBitwise)
{
    Rng rng(404);
    const std::int64_t rows = 300, cols = 41;
    Tensor x(Shape({rows, cols})), y1(Shape({rows, cols})),
        y8(Shape({rows, cols}));
    x.fillNormal(rng);
    Tensor dout(Shape({rows, cols}));
    dout.fillNormal(rng);

    setNumThreads(1);
    softmaxForward(x, y1);
    Tensor dbias1(Shape({cols}));
    biasBackward(dout, dbias1);

    setNumThreads(8);
    softmaxForward(x, y8);
    Tensor dbias8(Shape({cols}));
    biasBackward(dout, dbias8);

    EXPECT_TRUE(bitsEqual(y1, y8));
    EXPECT_TRUE(bitsEqual(dbias1, dbias8));
}

TEST_F(ParallelDeterminism, DropoutMaskAndOutputBitwise)
{
    Rng data_rng(505);
    Tensor x(Shape({5000}));
    x.fillNormal(data_rng);

    setNumThreads(1);
    Rng rng1(99);
    Tensor y1(Shape({5000})), m1(Shape({5000}));
    dropoutForward(x, 0.1f, rng1, y1, m1);

    setNumThreads(8);
    Rng rng8(99);
    Tensor y8(Shape({5000})), m8(Shape({5000}));
    dropoutForward(x, 0.1f, rng8, y8, m8);

    EXPECT_TRUE(bitsEqual(m1, m8));
    EXPECT_TRUE(bitsEqual(y1, y8));
}

/** Run `steps` Adam (or LAMB) updates on a fresh parameter. */
template <typename Opt>
Tensor
runOptimizer(int steps, std::int64_t numel)
{
    Parameter p("p", Shape({numel}));
    Rng rng(777);
    p.value.fillNormal(rng);
    OptimizerConfig config;
    config.learningRate = 1e-2f;
    Opt opt(config);
    for (int s = 0; s < steps; ++s) {
        p.grad.fillNormal(rng);
        opt.step({&p});
    }
    return p.value.clone();
}

TEST_F(ParallelDeterminism, AdamUpdatesBitwiseAcrossThreadCounts)
{
    setNumThreads(1);
    const Tensor w1 = runOptimizer<Adam>(4, 50000);
    setNumThreads(8);
    const Tensor w8 = runOptimizer<Adam>(4, 50000);
    EXPECT_TRUE(bitsEqual(w1, w8));
}

TEST_F(ParallelDeterminism, LambParallelCountsAgreeWithEachOther)
{
    // LAMB's trust-ratio norms reduce across the whole parameter.
    // The ordered chunk merge guarantees identical bits for every
    // *parallel* thread count (the chunk grid is thread-count
    // independent); the 1-thread path is the pre-runtime sequential
    // accumulation, which the contract intentionally preserves
    // instead.
    setNumThreads(2);
    const Tensor w2 = runOptimizer<Lamb>(4, 50000);
    setNumThreads(8);
    const Tensor w8 = runOptimizer<Lamb>(4, 50000);
    EXPECT_TRUE(bitsEqual(w2, w8));
}

} // namespace
} // namespace bertprof
