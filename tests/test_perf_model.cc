/** Tests for the analytical device model (GEMM model, cost model,
 *  roofline, executor). */

#include <algorithm>

#include <gtest/gtest.h>

#include "perf/cost_model.h"
#include "perf/executor.h"
#include "perf/gemm_model.h"
#include "perf/roofline.h"
#include "trace/bert_trace_builder.h"

namespace bertprof {
namespace {

TEST(GemmModel, TileSelection)
{
    EXPECT_EQ(GemmModel::selectTile(4096), 128);
    EXPECT_EQ(GemmModel::selectTile(128), 128);
    EXPECT_EQ(GemmModel::selectTile(96), 128);
    EXPECT_EQ(GemmModel::selectTile(64), 64);
    EXPECT_EQ(GemmModel::selectTile(33), 32);
    EXPECT_EQ(GemmModel::selectTile(8), 16);
}

TEST(GemmModel, EfficiencyBoundedByPeakFraction)
{
    const DeviceSpec spec = mi100();
    GemmModel model(spec);
    for (std::int64_t m : {64, 128, 1024, 4096}) {
        const auto eff = model.evaluate({false, false, m, 4096, 1024, 1},
                                        DType::F32);
        EXPECT_LE(eff.efficiency, spec.gemmPeakFractionFp32);
        EXPECT_GT(eff.efficiency, 0.0);
    }
}

TEST(GemmModel, BigFcGemmBeatsSmallAttentionBGemm)
{
    GemmModel model(mi100());
    const auto fc =
        model.evaluate({false, true, 4096, 4096, 1024, 1}, DType::F32);
    const auto attn =
        model.evaluate({false, true, 128, 128, 64, 512}, DType::F32);
    EXPECT_GT(fc.efficiency, 2.0 * attn.efficiency);
}

TEST(GemmModel, SplitKRescuesTallSkinnyGemms)
{
    // A weight-gradient-like GEMM (few tiles, deep K) must not be
    // crushed by wave quantization.
    GemmModel model(mi100());
    const auto wgrad =
        model.evaluate({false, true, 1024, 128, 8192, 1}, DType::F32);
    EXPECT_GT(wgrad.efficiency, 0.15);
}

TEST(GemmModel, Fp16FasterThanFp32ButLessThan4x)
{
    GemmModel model(mi100());
    const GemmDims dims{false, true, 4096, 4096, 1024, 1};
    const double f32 = model.achievedFlops(dims, DType::F32);
    const double f16 = model.achievedFlops(dims, DType::F16);
    EXPECT_GT(f16 / f32, 1.5);
    EXPECT_LT(f16 / f32, 4.0);
}

TEST(GemmModel, DeeperKImprovesUtilization)
{
    GemmModel model(mi100());
    const auto shallow =
        model.evaluate({false, false, 1024, 4096, 64, 1}, DType::F32);
    const auto deep =
        model.evaluate({false, false, 1024, 4096, 2048, 1}, DType::F32);
    EXPECT_GT(deep.kUtilization, shallow.kUtilization);
}

TEST(CostModel, ElementwiseOpsAreMemoryBound)
{
    KernelCostModel cost(mi100());
    OpDesc op;
    op.kind = OpKind::Elementwise;
    op.numel = 1 << 22;
    op.stats = elementwiseStats(op.numel, 2, 1, 1);
    const KernelTime time = cost.evaluate(op);
    EXPECT_TRUE(time.memoryBound());
    EXPECT_GT(time.total(), 0.0);
}

TEST(CostModel, BigFcGemmIsComputeBound)
{
    KernelCostModel cost(mi100());
    OpDesc op;
    op.kind = OpKind::Gemm;
    op.gemm = {false, true, 4096, 4096, 1024, 1};
    op.stats = gemmStats(4096, 4096, 1024);
    EXPECT_FALSE(cost.evaluate(op).memoryBound());
}

TEST(CostModel, LaunchOverheadDominatesTinyKernels)
{
    const DeviceSpec spec = mi100();
    KernelCostModel cost(spec);
    OpDesc op;
    op.kind = OpKind::Elementwise;
    op.numel = 16;
    op.stats = elementwiseStats(op.numel, 2, 1, 1);
    const KernelTime time = cost.evaluate(op);
    EXPECT_GT(spec.kernelLaunchOverhead,
              std::max(time.compute, time.memory));
}

TEST(CostModel, AchievedBandwidthRampsWithSize)
{
    KernelCostModel cost(mi100());
    EXPECT_LT(cost.achievedBandwidth(4096),
              cost.achievedBandwidth(1 << 20));
    EXPECT_LT(cost.achievedBandwidth(1 << 20),
              cost.achievedBandwidth(1 << 30));
    // Asymptote: streamBwFraction of peak.
    const DeviceSpec spec = mi100();
    EXPECT_NEAR(cost.achievedBandwidth(1LL << 40),
                spec.memBandwidth * spec.streamBwFraction,
                spec.memBandwidth * 0.01);
}

TEST(CostModel, CommOpsUseTheLink)
{
    const DeviceSpec spec = mi100();
    KernelCostModel cost(spec);
    OpDesc op;
    op.kind = OpKind::Comm;
    op.commBytes = 1 << 30;
    const KernelTime time = cost.evaluate(op);
    EXPECT_NEAR(time.link,
                spec.linkLatency +
                    static_cast<double>(1 << 30) / spec.linkBandwidth,
                1e-9);
    EXPECT_EQ(time.compute, 0.0);
}

TEST(CostModel, BandwidthDemandHigherForAttentionBGemms)
{
    KernelCostModel cost(mi100());
    OpDesc attn;
    attn.kind = OpKind::BatchedGemm;
    attn.gemm = {false, true, 128, 128, 64, 512};
    attn.stats = gemmStats(128, 128, 64, 512);
    OpDesc fc;
    fc.kind = OpKind::Gemm;
    fc.gemm = {false, true, 4096, 4096, 1024, 1};
    fc.stats = gemmStats(4096, 4096, 1024);
    EXPECT_GT(cost.bandwidthDemand(attn), 2.0 * cost.bandwidthDemand(fc));
}

TEST(Roofline, RidgePointMatchesDefinition)
{
    const DeviceSpec spec = mi100();
    EXPECT_DOUBLE_EQ(ridgePoint(spec, OpKind::Gemm, DType::F32),
                     spec.matrixFlopsFp32 / spec.memBandwidth);
    EXPECT_DOUBLE_EQ(ridgePoint(spec, OpKind::Elementwise, DType::F16),
                     spec.vectorFlopsFp16 / spec.memBandwidth);
}

TEST(Roofline, AttainableFlopsSaturatesAtPeak)
{
    const DeviceSpec spec = mi100();
    EXPECT_DOUBLE_EQ(
        attainableFlops(spec, OpKind::Gemm, DType::F32, 1e9),
        spec.matrixFlopsFp32);
    EXPECT_DOUBLE_EQ(
        attainableFlops(spec, OpKind::Elementwise, DType::F32, 0.1),
        0.1 * spec.memBandwidth);
}

TEST(Roofline, ClassifiesBertOps)
{
    const DeviceSpec spec = mi100();
    BertTraceBuilder builder(withPhase1(bertLarge(), 32));
    const OpTrace trace = builder.buildIteration();
    for (const auto &op : trace.ops) {
        if (op.sub == SubLayer::FcGelu || op.sub == SubLayer::DrRcLn ||
            op.sub == SubLayer::LambStage1 ||
            op.sub == SubLayer::LambStage2) {
            EXPECT_TRUE(memoryBoundAtPeak(spec, op)) << op.name;
        }
        if (op.sub == SubLayer::FcGemm && op.kind == OpKind::Gemm) {
            EXPECT_FALSE(memoryBoundAtPeak(spec, op)) << op.name;
        }
    }
}

TEST(Executor, TotalEqualsSumOfParts)
{
    TraceExecutor executor(mi100());
    BertTraceBuilder builder(withPhase1(bertLarge(), 4));
    const TimedTrace timed = executor.execute(builder.buildIteration());
    Seconds sum = 0.0;
    for (const auto &t : timed.ops)
        sum += t.time.total();
    EXPECT_DOUBLE_EQ(sum, timed.totalSeconds());
    EXPECT_EQ(timed.kernelCount(), builder.buildIteration().size());
}

TEST(Executor, AggregationsPartitionTotal)
{
    TraceExecutor executor(mi100());
    BertTraceBuilder builder(withPhase1(bertLarge(), 4));
    const TimedTrace timed = executor.execute(builder.buildIteration());
    for (const auto &agg :
         {timed.byScope(), timed.bySubLayer(), timed.byPhase(),
          timed.byKind()}) {
        Seconds total = 0.0;
        std::int64_t kernels = 0;
        for (const auto &[name, a] : agg) {
            total += a.seconds;
            kernels += a.kernelCount;
        }
        EXPECT_NEAR(total, timed.totalSeconds(),
                    1e-9 * timed.totalSeconds());
        EXPECT_EQ(kernels,
                  static_cast<std::int64_t>(timed.kernelCount()));
    }
}

TEST(Executor, ShareWhereIsConsistent)
{
    TraceExecutor executor(mi100());
    BertTraceBuilder builder(withPhase1(bertLarge(), 4));
    const TimedTrace timed = executor.execute(builder.buildIteration());
    const double gemm_share = timed.shareWhere([](const TimedOp &t) {
        return t.op.kind == OpKind::Gemm ||
               t.op.kind == OpKind::BatchedGemm;
    });
    const double other = timed.shareWhere([](const TimedOp &t) {
        return t.op.kind != OpKind::Gemm &&
               t.op.kind != OpKind::BatchedGemm;
    });
    EXPECT_NEAR(gemm_share + other, 1.0, 1e-9);
}

TEST(DevicePresets, VariantsChangeTheRightKnobs)
{
    EXPECT_LT(mi100HalfBandwidth().memBandwidth, mi100().memBandwidth);
    EXPECT_GT(futureDoubleCompute().matrixFlopsFp32,
              mi100().matrixFlopsFp32);
    EXPECT_EQ(futureDoubleCompute().memBandwidth, mi100().memBandwidth);
}

TEST(DevicePresets, CommercialDevicesHaveSaneRatios)
{
    // The Sec. 7 extrapolation quantity is the compute/bandwidth
    // ridge; A100's FP16 ridge is the steepest of the three.
    const double mi100_ridge =
        ridgePoint(mi100(), OpKind::Gemm, DType::F16);
    const double a100_ridge =
        ridgePoint(a100Like(), OpKind::Gemm, DType::F16);
    const double mi250_ridge =
        ridgePoint(mi250Like(), OpKind::Gemm, DType::F16);
    EXPECT_GT(a100_ridge, mi100_ridge);
    EXPECT_GT(a100_ridge, mi250_ridge);

    // And the paper's claim: the MP breakdown on an A100-like device
    // shifts further toward memory-bound work than on MI100-like.
    BertConfig mp = withPhase1(bertLarge(), 32);
    mp.precision = Precision::Mixed;
    BertTraceBuilder builder(mp);
    const OpTrace trace = builder.buildIteration();
    auto gemm_share = [&](const DeviceSpec &spec) {
        TraceExecutor executor(spec);
        const TimedTrace timed = executor.execute(trace);
        return timed.shareWhere([](const TimedOp &t) {
            return t.op.kind == OpKind::Gemm ||
                   t.op.kind == OpKind::BatchedGemm;
        });
    };
    EXPECT_LT(gemm_share(a100Like()), gemm_share(mi100()));
}

TEST(DevicePresets, MemoryBoundShareGrowsOnFutureDevice)
{
    // Sec. 7: compute scales faster than memory, so memory-bound ops
    // grow in share on future devices.
    BertTraceBuilder builder(withPhase1(bertLarge(), 32));
    const OpTrace trace = builder.buildIteration();
    auto ew_share = [&](const DeviceSpec &spec) {
        TraceExecutor executor(spec);
        const TimedTrace timed = executor.execute(trace);
        return timed.shareWhere([](const TimedOp &t) {
            return t.op.kind == OpKind::Elementwise ||
                   t.op.kind == OpKind::Reduction;
        });
    };
    EXPECT_GT(ew_share(futureDoubleCompute()), ew_share(mi100()));
}

} // namespace
} // namespace bertprof
