/** Tests for dropout, embedding gather/scatter, and cross-entropy. */

#include <cmath>

#include <gtest/gtest.h>

#include "ops/cross_entropy.h"
#include "ops/dropout.h"
#include "ops/embedding.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace bertprof {
namespace {

TEST(Dropout, ZeroProbabilityIsIdentity)
{
    Rng rng(1);
    Tensor in(Shape({16}));
    in.fillNormal(rng);
    Tensor out(in.shape()), mask(in.shape());
    dropoutForward(in, 0.0f, rng, out, mask);
    EXPECT_LT(maxAbsDiff(in, out), 1e-7f);
    for (std::int64_t i = 0; i < mask.numel(); ++i)
        EXPECT_FLOAT_EQ(mask.at(i), 1.0f);
}

TEST(Dropout, DropRateMatchesProbability)
{
    Rng rng(2);
    Tensor in(Shape({20000}));
    in.fill(1.0f);
    Tensor out(in.shape()), mask(in.shape());
    dropoutForward(in, 0.25f, rng, out, mask);
    std::int64_t dropped = 0;
    for (std::int64_t i = 0; i < out.numel(); ++i)
        dropped += out.at(i) == 0.0f ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(dropped) / out.numel(), 0.25, 0.02);
}

TEST(Dropout, InvertedScalingPreservesExpectation)
{
    Rng rng(3);
    Tensor in(Shape({50000}));
    in.fill(1.0f);
    Tensor out(in.shape()), mask(in.shape());
    dropoutForward(in, 0.4f, rng, out, mask);
    EXPECT_NEAR(out.sum() / out.numel(), 1.0, 0.03);
}

TEST(Dropout, BackwardAppliesSavedMask)
{
    Rng rng(4);
    Tensor in(Shape({64}));
    in.fill(1.0f);
    Tensor out(in.shape()), mask(in.shape());
    dropoutForward(in, 0.5f, rng, out, mask);
    Tensor dout(in.shape());
    dout.fill(2.0f);
    Tensor din(in.shape());
    dropoutBackward(dout, mask, din);
    for (std::int64_t i = 0; i < din.numel(); ++i)
        EXPECT_FLOAT_EQ(din.at(i), 2.0f * mask.at(i));
}

TEST(Embedding, GatherCopiesRows)
{
    Tensor table(Shape({4, 3}),
                 {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3});
    Tensor out(Shape({2, 3}));
    embeddingForward(table, {2, 0}, out);
    EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(out.at(1, 2), 0.0f);
}

TEST(Embedding, ScatterAccumulatesDuplicates)
{
    Tensor dout(Shape({3, 2}), {1, 1, 2, 2, 4, 4});
    Tensor dtable(Shape({4, 2}));
    embeddingBackward(dout, {1, 1, 3}, dtable);
    EXPECT_FLOAT_EQ(dtable.at(1, 0), 3.0f); // 1 + 2
    EXPECT_FLOAT_EQ(dtable.at(3, 1), 4.0f);
    EXPECT_FLOAT_EQ(dtable.at(0, 0), 0.0f);
}

TEST(Embedding, GatherScatterAreAdjoint)
{
    // <gather(T, ids), G> == <T, scatter(G, ids)> for any T, G.
    Rng rng(5);
    Tensor table(Shape({6, 4}));
    table.fillNormal(rng);
    std::vector<std::int64_t> ids = {3, 1, 1, 5};
    Tensor g(Shape({4, 4}));
    g.fillNormal(rng);

    Tensor gathered(Shape({4, 4}));
    embeddingForward(table, ids, gathered);
    double lhs = 0.0;
    for (std::int64_t i = 0; i < g.numel(); ++i)
        lhs += static_cast<double>(gathered.at(i)) * g.at(i);

    Tensor scattered(table.shape());
    embeddingBackward(g, ids, scattered);
    double rhs = 0.0;
    for (std::int64_t i = 0; i < table.numel(); ++i)
        rhs += static_cast<double>(table.at(i)) * scattered.at(i);
    EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(CrossEntropy, UniformLogitsGiveLogC)
{
    Tensor logits(Shape({2, 8}));
    Tensor dlogits(logits.shape());
    const auto result = softmaxCrossEntropy(logits, {3, 5}, dlogits);
    EXPECT_NEAR(result.loss, std::log(8.0), 1e-5);
    EXPECT_EQ(result.count, 2);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss)
{
    Tensor logits(Shape({1, 4}), {100.0f, 0.0f, 0.0f, 0.0f});
    Tensor dlogits(logits.shape());
    const auto result = softmaxCrossEntropy(logits, {0}, dlogits);
    EXPECT_NEAR(result.loss, 0.0, 1e-5);
}

TEST(CrossEntropy, IgnoredPositionsSkipped)
{
    Tensor logits(Shape({3, 4}));
    Tensor dlogits(logits.shape());
    const auto result =
        softmaxCrossEntropy(logits, {kIgnoreIndex, 1, kIgnoreIndex},
                            dlogits);
    EXPECT_EQ(result.count, 1);
    // Ignored rows get zero gradient.
    for (int c = 0; c < 4; ++c) {
        EXPECT_FLOAT_EQ(dlogits.at(0, c), 0.0f);
        EXPECT_FLOAT_EQ(dlogits.at(2, c), 0.0f);
    }
}

TEST(CrossEntropy, GradientRowsSumToZero)
{
    Rng rng(6);
    Tensor logits(Shape({4, 5}));
    logits.fillNormal(rng);
    Tensor dlogits(logits.shape());
    softmaxCrossEntropy(logits, {0, 1, 2, 3}, dlogits);
    for (int r = 0; r < 4; ++r) {
        double row = 0.0;
        for (int c = 0; c < 5; ++c)
            row += dlogits.at(r, c);
        EXPECT_NEAR(row, 0.0, 1e-6);
    }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference)
{
    Rng rng(7);
    Tensor logits(Shape({2, 4}));
    logits.fillNormal(rng);
    std::vector<std::int64_t> labels = {1, 3};
    Tensor dlogits(logits.shape());
    softmaxCrossEntropy(logits, labels, dlogits);

    auto loss = [&]() {
        Tensor d(logits.shape());
        return softmaxCrossEntropy(logits, labels, d).loss;
    };
    testing::expectGradientsMatch(logits, loss, dlogits, 1e-3, 1e-2);
}

TEST(CrossEntropy, AllIgnoredGivesZeroLoss)
{
    Tensor logits(Shape({2, 3}));
    Tensor dlogits(logits.shape());
    const auto result = softmaxCrossEntropy(
        logits, {kIgnoreIndex, kIgnoreIndex}, dlogits);
    EXPECT_EQ(result.count, 0);
    EXPECT_EQ(result.loss, 0.0);
}

} // namespace
} // namespace bertprof
