/** Tests for GeLU/ReLU/tanh activations and softmax, incl. gradchecks. */

#include <cmath>

#include <gtest/gtest.h>

#include "ops/activation.h"
#include "ops/softmax.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace bertprof {
namespace {

using testing::expectGradientsMatch;

TEST(Gelu, KnownValues)
{
    Tensor in(Shape({3}), {0.0f, 1.0f, -1.0f});
    Tensor out(Shape({3}));
    geluForward(in, out);
    EXPECT_NEAR(out.at(0), 0.0f, 1e-7f);
    // GELU(1) = 0.5 * (1 + erf(1/sqrt(2))) = 0.841345
    EXPECT_NEAR(out.at(1), 0.841345f, 1e-5f);
    EXPECT_NEAR(out.at(2), -0.158655f, 1e-5f);
}

TEST(Gelu, AsymptoticBehaviour)
{
    Tensor in(Shape({2}), {10.0f, -10.0f});
    Tensor out(Shape({2}));
    geluForward(in, out);
    EXPECT_NEAR(out.at(0), 10.0f, 1e-4f);
    EXPECT_NEAR(out.at(1), 0.0f, 1e-4f);
}

TEST(Gelu, GradientMatchesFiniteDifference)
{
    Rng rng(1);
    Tensor in(Shape({8}));
    in.fillNormal(rng);
    Tensor dout(Shape({8}));
    dout.fill(1.0f);
    Tensor din(Shape({8}));
    geluBackward(in, dout, din);

    auto loss = [&]() {
        Tensor out(in.shape());
        geluForward(in, out);
        return out.sum();
    };
    expectGradientsMatch(in, loss, din, 1e-3, 1e-2);
}

TEST(Relu, ForwardAndBackward)
{
    Tensor in(Shape({4}), {-1, 0, 2, -3});
    Tensor out(Shape({4}));
    reluForward(in, out);
    EXPECT_FLOAT_EQ(out.at(0), 0.0f);
    EXPECT_FLOAT_EQ(out.at(2), 2.0f);

    Tensor dout(Shape({4}));
    dout.fill(1.0f);
    Tensor din(Shape({4}));
    reluBackward(in, dout, din);
    EXPECT_FLOAT_EQ(din.at(0), 0.0f);
    EXPECT_FLOAT_EQ(din.at(2), 1.0f);
}

TEST(Tanh, BackwardUsesSavedOutput)
{
    Rng rng(2);
    Tensor in(Shape({6}));
    in.fillNormal(rng);
    Tensor out(in.shape());
    tanhForward(in, out);
    Tensor dout(in.shape());
    dout.fill(1.0f);
    Tensor din(in.shape());
    tanhBackward(out, dout, din);

    auto loss = [&]() {
        Tensor y(in.shape());
        tanhForward(in, y);
        return y.sum();
    };
    expectGradientsMatch(in, loss, din, 1e-3, 1e-2);
}

TEST(Softmax, RowsSumToOne)
{
    Rng rng(3);
    Tensor in(Shape({5, 7}));
    in.fillNormal(rng, 0.0f, 3.0f);
    Tensor out(in.shape());
    softmaxForward(in, out);
    for (int r = 0; r < 5; ++r) {
        double row = 0.0;
        for (int c = 0; c < 7; ++c) {
            row += out.at(r, c);
            EXPECT_GT(out.at(r, c), 0.0f);
        }
        EXPECT_NEAR(row, 1.0, 1e-5);
    }
}

TEST(Softmax, ShiftInvariant)
{
    Tensor a(Shape({1, 3}), {1, 2, 3});
    Tensor b(Shape({1, 3}), {101, 102, 103});
    Tensor oa(a.shape()), ob(b.shape());
    softmaxForward(a, oa);
    softmaxForward(b, ob);
    EXPECT_LT(maxAbsDiff(oa, ob), 1e-6f);
}

TEST(Softmax, NumericallyStableForLargeInputs)
{
    Tensor in(Shape({1, 2}), {1000.0f, 999.0f});
    Tensor out(in.shape());
    softmaxForward(in, out);
    EXPECT_FALSE(std::isnan(out.at(0)));
    EXPECT_NEAR(out.at(0) + out.at(1), 1.0f, 1e-5f);
    EXPECT_GT(out.at(0), out.at(1));
}

TEST(Softmax, HandlesHigherRankTensors)
{
    Rng rng(4);
    Tensor in(Shape({2, 3, 4}));
    in.fillNormal(rng);
    Tensor out(in.shape());
    softmaxForward(in, out);
    for (int r = 0; r < 6; ++r) {
        double row = 0.0;
        for (int c = 0; c < 4; ++c)
            row += out.at(r * 4 + c);
        EXPECT_NEAR(row, 1.0, 1e-5);
    }
}

TEST(Softmax, GradientMatchesFiniteDifference)
{
    Rng rng(5);
    Tensor in(Shape({2, 4}));
    in.fillNormal(rng);
    // Loss = sum(w * softmax(in)) with distinct weights so the
    // gradient is non-trivial.
    Tensor w(Shape({2, 4}), {1, -2, 3, 0.5f, -1, 2, 0.25f, 4});

    Tensor out(in.shape());
    softmaxForward(in, out);
    Tensor din(in.shape());
    softmaxBackward(out, w, din);

    auto loss = [&]() {
        Tensor y(in.shape());
        softmaxForward(in, y);
        double total = 0.0;
        for (std::int64_t i = 0; i < y.numel(); ++i)
            total += static_cast<double>(y.at(i)) * w.at(i);
        return total;
    };
    expectGradientsMatch(in, loss, din, 1e-3, 1e-2);
}

} // namespace
} // namespace bertprof
