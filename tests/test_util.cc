/** Tests for util: units formatting, Table, CSV, Rng, logging. */

#include <csignal>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

namespace bertprof {
namespace {

TEST(Units, FormatBytesUsesBinaryPrefixes)
{
    EXPECT_EQ(formatBytes(512), "512.00 B");
    EXPECT_EQ(formatBytes(1024), "1.00 KiB");
    EXPECT_EQ(formatBytes(1.25 * 1024 * 1024 * 1024), "1.25 GiB");
}

TEST(Units, FormatFlopsUsesDecimalPrefixes)
{
    EXPECT_EQ(formatFlops(999), "999.00 FLOP");
    EXPECT_EQ(formatFlops(34.36e9), "34.36 GFLOP");
    EXPECT_EQ(formatFlops(1.5e12), "1.50 TFLOP");
}

TEST(Units, FormatSecondsPicksScale)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(0.0125), "12.500 ms");
    EXPECT_EQ(formatSeconds(3.2e-6), "3.200 us");
    EXPECT_EQ(formatSeconds(5e-9), "5.000 ns");
}

TEST(Units, FormatRates)
{
    EXPECT_EQ(formatFlopRate(46.1e12), "46.10 TFLOP/s");
    EXPECT_EQ(formatByteRate(1.23e12), "1.23 TB/s");
}

TEST(Units, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.5), "50.0%");
    EXPECT_EQ(formatPercent(0.073, 2), "7.30%");
}

TEST(Table, RendersHeaderAndRowsAligned)
{
    Table table("Title");
    table.setHeader({"A", "Long column"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "2"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| A      |"), std::string::npos);
    EXPECT_NE(out.find("| longer |"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, SeparatorRowsAreNotCounted)
{
    Table table;
    table.setHeader({"A"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    EXPECT_EQ(table.rowCount(), 2u);
    // Three content-bounding separators plus the explicit one.
    const std::string out = table.render();
    int separators = 0;
    for (std::size_t pos = 0; (pos = out.find("+--", pos)) !=
                              std::string::npos;
         ++pos) {
        ++separators;
    }
    EXPECT_EQ(separators, 4);
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RendersHeaderAndRows)
{
    CsvWriter csv;
    csv.setHeader({"x", "y"});
    csv.addRow({"1", "2"});
    csv.addRow({"a,b", "3"});
    EXPECT_EQ(csv.render(), "x,y\n1,2\n\"a,b\",3\n");
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntWithinBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, NormalHasRequestedMoments)
{
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / trials;
    const double var = sum_sq / trials - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Logging, LevelGate)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    // Below-threshold messages are dropped silently (smoke test).
    logMessage(LogLevel::Debug, "should not appear");
    setLogLevel(saved);
}

TEST(Logging, StreamMacroDoesNotCrash)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error); // suppress output during the test
    BP_LOG(Info) << "value = " << 42 << " and " << 3.14;
    setLogLevel(saved);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_EXIT({ BP_PANIC() << "internal bug"; },
                ::testing::KilledBySignal(SIGABRT), "internal bug");
}

#ifndef NDEBUG
TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_EXIT({ BP_ASSERT(1 == 2); },
                ::testing::KilledBySignal(SIGABRT), "assertion failed");
}
#else
TEST(Logging, AssertCompilesOutInRelease)
{
    // The debug tier must not evaluate its condition under NDEBUG.
    int evals = 0;
    BP_ASSERT(++evals > 0);
    EXPECT_EQ(evals, 0);
}
#endif

} // namespace
} // namespace bertprof
