/**
 * @file
 * Internal seam between the rule engine halves: lint.cc owns the
 * per-TU lexical rules and orchestration; semantic.cc owns the
 * phase-2 rules that need the TU/project model (dataflow must-check,
 * static capture-race detection, hot-loop allocation, the env-knob
 * registry, and transitive include-DAG enforcement). Not installed;
 * linked only into bp_lint.
 */

#ifndef BERTPROF_TOOLS_BPLINT_RULES_H
#define BERTPROF_TOOLS_BPLINT_RULES_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "model.h"

namespace bplint {

/** Layer -> layers it may include (itself always included). */
const std::map<std::string, std::set<std::string>> &layerMap();

/** Include targets exempt from layering (shared vocabulary types). */
const std::set<std::string> &layerExceptions();

/** must-check-io: dropped or never-read IoStatus results (src .cc). */
void checkMustCheckIo(const ProjectModel &pm, const TuModel &tu,
                      std::vector<Finding> &out);

/** parallel-capture-race: writes to by-ref captures in parallel bodies. */
void checkParallelCaptureRace(const ProjectModel &pm, const TuModel &tu,
                              std::vector<Finding> &out);

/** hot-loop-alloc: Tensor ctors / heap allocs in hot regions (src/). */
void checkHotLoopAlloc(const TuModel &tu, std::vector<Finding> &out);

/** env-registry, read side: undocumented BERTPROF_* reads in src/. */
void checkEnvReads(const TuModel &tu,
                   const std::map<std::string, int> &docKnobs,
                   std::vector<Finding> &out);

/** env-registry, doc side: documented knobs never read in src/. */
void checkEnvDoc(const ProjectModel &pm, const std::string &envDocPath,
                 const std::map<std::string, int> &docKnobs,
                 std::vector<Finding> &out);

/** Parse the env-knob table: knob -> 1-based doc line. */
std::map<std::string, int> parseEnvDoc(const std::string &text);

/** include-dag: transitive layering violations + include cycles. */
void checkIncludeDag(const ProjectModel &pm, std::vector<Finding> &out);

} // namespace bplint

#endif // BERTPROF_TOOLS_BPLINT_RULES_H
