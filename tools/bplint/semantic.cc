/**
 * @file
 * Phase-2 semantic rules over the bplint source model (model.h):
 *
 *   must-check-io          an IoStatus-returning call whose result is
 *                          neither bound-and-read nor returned drops
 *                          an error on the floor — the crash-safe
 *                          checkpoint protocol is void if a status is
 *                          ignored. Explicit (void) casts still fire:
 *                          an intentional drop needs an allow comment
 *                          with a rationale.
 *   parallel-capture-race  any write (assignment, ++/--, non-const
 *                          member call, pass-by-non-const-ref) to a
 *                          by-reference-captured variable that is not
 *                          subscripted by a body-local index, inside
 *                          a parallelFor/parallelFor2d body.
 *   hot-loop-alloc         no Tensor construction or heap allocation
 *                          inside parallelFor bodies or ScopedKernel
 *                          regions — keeps the graph executor's arena
 *                          discipline honest.
 *   env-registry           every BERTPROF_* knob read in src/ must
 *                          appear in the README table and vice versa.
 *   include-dag            transitive layering over the real include
 *                          graph, plus include-cycle detection.
 */

#include "rules.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <sstream>

namespace bplint {

namespace {

bool
isSrcCc(const std::string &path)
{
    return !srcRelative(path).empty() && path.size() > 3 &&
           path.compare(path.size() - 3, 3, ".cc") == 0;
}

std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
    }
    return i;
}

/** Last non-ws offset strictly before `i`, or npos. */
std::size_t
prevNonWs(const std::string &s, std::size_t i)
{
    while (i > 0) {
        --i;
        if (!std::isspace(static_cast<unsigned char>(s[i])))
            return i;
    }
    return std::string::npos;
}

std::size_t
matchPairFwd(const std::string &s, std::size_t open, char oc, char cc)
{
    int depth = 1;
    for (std::size_t j = open + 1; j < s.size(); ++j) {
        if (s[j] == oc)
            ++depth;
        else if (s[j] == cc && --depth == 0)
            return j;
    }
    return std::string::npos;
}

/** Offset of the '[' matching the ']' at `close`, or npos. */
std::size_t
matchBack(const std::string &s, std::size_t close, char oc, char cc)
{
    int depth = 1;
    for (std::size_t j = close; j-- > 0;) {
        if (s[j] == cc)
            ++depth;
        else if (s[j] == oc && --depth == 0)
            return j;
    }
    return std::string::npos;
}

const std::set<std::string> &
cppKeywords()
{
    static const std::set<std::string> k = {
        "if",       "for",      "while",   "switch",  "catch",
        "return",   "sizeof",   "alignof", "decltype", "new",
        "delete",   "throw",    "static_cast", "const_cast",
        "dynamic_cast", "reinterpret_cast", "assert", "defined"};
    return k;
}

/** Type of `name` in a raw parameter list, or "". */
std::string
paramDeclType(const std::string &params, const std::string &name)
{
    int depth = 0;
    std::size_t start = 0;
    for (std::size_t j = 0; j <= params.size(); ++j) {
        const char c = j < params.size() ? params[j] : ',';
        if (c == '(' || c == '<' || c == '[')
            ++depth;
        else if (c == ')' || c == '>' || c == ']')
            --depth;
        if (c != ',' || depth > 0)
            continue;
        const auto toks = identTokens(params.substr(start, j - start));
        start = j + 1;
        if (toks.size() < 2 || toks.back() != name)
            continue;
        for (const auto &t : toks) {
            static const std::set<std::string> quals = {
                "const", "std", "unsigned", "signed", "volatile",
                "struct", "class"};
            if (!quals.count(t))
                return t == name ? "" : t;
        }
    }
    return "";
}

/**
 * Type of a local declaration of `name` in `body` before `before`,
 * or "". Statement-splitting heuristic shared with localDecls().
 */
std::string
localDeclType(const std::string &body, std::size_t before,
              const std::string &name)
{
    std::size_t start = 0;
    const std::size_t limit = std::min(before, body.size());
    for (std::size_t i = 0; i <= limit; ++i) {
        const char c = i < limit ? body[i] : ';';
        if (c != ';' && c != '{' && c != '}' && c != '(' && c != ')')
            continue;
        std::string stmt = body.substr(start, i - start);
        start = i + 1;
        const std::size_t eq = stmt.find('=');
        if (eq != std::string::npos)
            stmt = stmt.substr(0, eq);
        const auto toks = identTokens(stmt);
        if (toks.size() < 2 || toks.back() != name)
            continue;
        if (hasToken(stmt, "return"))
            continue;
        static const std::set<std::string> quals = {
            "const", "static", "thread_local", "constexpr", "std",
            "unsigned", "signed", "auto"};
        for (const auto &t : toks) {
            if (!quals.count(t))
                return t == name ? "" : t;
        }
    }
    return "";
}

/** Enclosing namespace-scope function definition for an offset. */
const FuncFact *
enclosingFunc(const TuModel &tu, std::size_t pos)
{
    const FuncFact *best = nullptr;
    for (const FuncFact &f : tu.funcs) {
        if (f.bodyBegin <= pos && pos < f.bodyEnd &&
            (!best || f.bodyBegin > best->bodyBegin)) {
            best = &f;
        }
    }
    return best;
}

/**
 * Resolve the declared type of identifier `name` used at stripped
 * offset `usePos`: enclosing function parameters, then body locals,
 * then enclosing class members (cross-TU), else "".
 */
std::string
resolveVarType(const ProjectModel &pm, const TuModel &tu,
               const FuncFact *fn, const std::string &name,
               std::size_t usePos)
{
    if (fn) {
        const std::string t = paramDeclType(fn->params, name);
        if (!t.empty())
            return t;
        const std::string l = localDeclType(
            tu.stripped.substr(fn->bodyBegin, fn->bodyEnd - fn->bodyBegin),
            usePos - fn->bodyBegin, name);
        if (!l.empty())
            return l;
        if (!fn->className.empty()) {
            const auto ci = pm.classes.find(fn->className);
            if (ci != pm.classes.end()) {
                const auto mi = ci->second.memberTypes.find(name);
                if (mi != ci->second.memberTypes.end())
                    return mi->second;
            }
        }
    }
    return "";
}

/** Read the identifier ending at offset `end` (exclusive); "" if none. */
std::string
identEndingAt(const std::string &s, std::size_t end, std::size_t *beginOut)
{
    std::size_t b = end;
    while (b > 0 && isIdentChar(s[b - 1]))
        --b;
    if (beginOut)
        *beginOut = b;
    return b < end ? s.substr(b, end - b) : "";
}

// ---------------------------------------------------------------------
// must-check-io
// ---------------------------------------------------------------------

struct CallSite {
    std::string callee;
    std::size_t calleeBegin = 0; ///< offset of the callee token
    std::size_t exprBegin = 0;   ///< start of the full call chain
    std::size_t rparen = 0;      ///< offset of the call's ')'
};

/**
 * Walk back over the receiver chain of a member call whose '.'/'->'
 * sits just before `calleeBegin`; returns the chain start offset.
 */
std::size_t
chainStart(const std::string &s, std::size_t calleeBegin)
{
    std::size_t i = calleeBegin;
    while (true) {
        std::size_t p = prevNonWs(s, i);
        if (p == std::string::npos)
            return i;
        if (s[p] == '.') {
            i = p;
        } else if (p > 0 && s[p] == '>' && s[p - 1] == '-') {
            i = p - 1;
        } else if (p > 0 && s[p] == ':' && s[p - 1] == ':') {
            i = p - 1;
        } else {
            return i;
        }
        // Walk over the preceding primary: `)` of a call, or an ident.
        p = prevNonWs(s, i);
        if (p == std::string::npos)
            return i;
        if (s[p] == ')') {
            const std::size_t lp = matchBack(s, p, '(', ')');
            if (lp == std::string::npos)
                return i;
            std::size_t b = 0;
            const std::string id = identEndingAt(s, lp, &b);
            if (id.empty()) {
                std::size_t ws = lp;
                while (ws > 0 && std::isspace(
                                     static_cast<unsigned char>(s[ws - 1])))
                    --ws;
                (void)identEndingAt(s, ws, &b);
                if (b == ws)
                    return i;
            }
            i = b;
        } else if (isIdentChar(s[p])) {
            std::size_t b = 0;
            (void)identEndingAt(s, p + 1, &b);
            i = b;
        } else {
            return i;
        }
    }
}

/** Resolve whether a call site returns IoStatus under the model. */
bool
returnsIoStatus(const ProjectModel &pm, const TuModel &tu,
                const FuncFact *fn, const std::string &s,
                const CallSite &cs)
{
    const std::size_t p = prevNonWs(s, cs.calleeBegin);
    const bool member =
        p != std::string::npos &&
        (s[p] == '.' || (p > 0 && s[p] == '>' && s[p - 1] == '-'));
    const bool qualified =
        p != std::string::npos && p > 0 && s[p] == ':' && s[p - 1] == ':';

    if (member) {
        // Resolve the receiver: a simple identifier, or C::method().
        const std::size_t dot = s[p] == '.' ? p : p - 1;
        std::size_t q = prevNonWs(s, dot);
        if (q == std::string::npos)
            return false;
        if (isIdentChar(s[q])) {
            std::size_t b = 0;
            const std::string recv = identEndingAt(s, q + 1, &b);
            // this->member()
            if (recv == "this" && fn && !fn->className.empty()) {
                const MethodFact *mf =
                    pm.method(fn->className, cs.callee);
                return mf && mf->returnsIoStatus;
            }
            const std::string type =
                resolveVarType(pm, tu, fn, recv, cs.calleeBegin);
            if (type.empty())
                return false;
            const MethodFact *mf = pm.method(type, cs.callee);
            return mf && mf->returnsIoStatus;
        }
        if (s[q] == ')') {
            // Receiver is a call: resolve its return type one level.
            const std::size_t lp = matchBack(s, q, '(', ')');
            if (lp == std::string::npos)
                return false;
            std::size_t b = 0;
            const std::string inner = identEndingAt(s, lp, &b);
            if (inner.empty())
                return false;
            std::string retType;
            const std::size_t ip = prevNonWs(s, b);
            if (ip != std::string::npos && ip > 0 && s[ip] == ':' &&
                s[ip - 1] == ':') {
                std::size_t cb = 0;
                const std::string cls =
                    identEndingAt(s, ip - 1, &cb);
                const MethodFact *mf = pm.method(cls, inner);
                if (mf)
                    retType = mf->retType;
            } else {
                const auto fi = pm.freeFns.find(inner);
                if (fi != pm.freeFns.end())
                    retType = fi->second.retType;
            }
            if (retType.empty())
                return false;
            const MethodFact *mf = pm.method(retType, cs.callee);
            return mf && mf->returnsIoStatus;
        }
        return false;
    }
    if (qualified) {
        std::size_t b = 0;
        const std::string qual = identEndingAt(s, p - 1, &b);
        const MethodFact *mf = pm.method(qual, cs.callee);
        if (mf)
            return mf->returnsIoStatus;
        // Namespace qualifier (bertprof::writeTextFile).
        const auto fi = pm.freeFns.find(cs.callee);
        return fi != pm.freeFns.end() && fi->second.returnsIoStatus;
    }
    // Unqualified: inside a method it may be a call on *this.
    if (fn && !fn->className.empty()) {
        const MethodFact *mf = pm.method(fn->className, cs.callee);
        if (mf)
            return mf->returnsIoStatus;
    }
    const auto fi = pm.freeFns.find(cs.callee);
    return fi != pm.freeFns.end() && fi->second.returnsIoStatus;
}

/** True when `name` reads as a class data member (cross-TU lookup). */
bool
looksLikeMember(const ProjectModel &pm, const FuncFact *fn,
                const std::string &name)
{
    if (!name.empty() && name.back() == '_')
        return true;
    if (fn && !fn->className.empty()) {
        const auto ci = pm.classes.find(fn->className);
        if (ci != pm.classes.end() &&
            ci->second.memberTypes.count(name)) {
            return true;
        }
    }
    return false;
}

} // namespace

void
checkMustCheckIo(const ProjectModel &pm, const TuModel &tu,
                 std::vector<Finding> &out)
{
    if (!isSrcCc(tu.path))
        return;
    const std::string &s = tu.stripped;

    for (const FuncFact &fn : tu.funcs) {
        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd;) {
            if (!isIdentChar(s[i]) ||
                std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
                continue;
            }
            const std::size_t b = i;
            while (i < fn.bodyEnd && isIdentChar(s[i]))
                ++i;
            const std::string tok = s.substr(b, i - b);
            if (cppKeywords().count(tok))
                continue;
            const std::size_t lp = skipWs(s, i);
            if (lp >= fn.bodyEnd || s[lp] != '(')
                continue;
            const std::size_t rp = matchPairFwd(s, lp, '(', ')');
            if (rp == std::string::npos || rp >= fn.bodyEnd)
                continue;

            CallSite cs;
            cs.callee = tok;
            cs.calleeBegin = b;
            cs.rparen = rp;
            if (!returnsIoStatus(pm, tu, &fn, s, cs))
                continue;

            // How is the result used? A member access chains it; any
            // other non-';' continuation embeds it in an expression.
            const std::size_t after = skipWs(s, rp + 1);
            if (after >= s.size())
                continue;
            if (s[after] == '.' ||
                (s[after] == '-' && after + 1 < s.size() &&
                 s[after + 1] == '>')) {
                continue; // chained, e.g. .ok()
            }
            if (s[after] != ';')
                continue; // subexpression: arg, condition, ternary...

            // Statement-final: inspect what precedes the call chain.
            cs.exprBegin = chainStart(s, b);
            std::size_t stmtStart = cs.exprBegin;
            while (stmtStart > fn.bodyBegin && s[stmtStart - 1] != ';' &&
                   s[stmtStart - 1] != '{' && s[stmtStart - 1] != '}') {
                --stmtStart;
            }
            const std::string prefix =
                s.substr(stmtStart, cs.exprBegin - stmtStart);
            const auto ptoks = identTokens(prefix);
            if (std::find(ptoks.begin(), ptoks.end(), "return") !=
                ptoks.end()) {
                continue;
            }
            // Bound to a variable? Find a depth-0 '=' in the prefix.
            std::size_t eq = std::string::npos;
            int depth = 0;
            for (std::size_t j = 0; j < prefix.size(); ++j) {
                const char c = prefix[j];
                if (c == '(' || c == '[')
                    ++depth;
                else if (c == ')' || c == ']')
                    --depth;
                else if (c == '=' && depth == 0 &&
                         (j + 1 >= prefix.size() ||
                          prefix[j + 1] != '=') &&
                         (j == 0 ||
                          std::string("=!<>+-*/%&|^").find(
                              prefix[j - 1]) == std::string::npos)) {
                    eq = j;
                    break;
                }
            }
            if (eq != std::string::npos) {
                std::size_t e = eq;
                while (e > 0 && std::isspace(static_cast<unsigned char>(
                                    prefix[e - 1])))
                    --e;
                const std::string bound = identEndingAt(prefix, e, nullptr);
                if (bound.empty())
                    continue;
                // Stored into a member: escapes this function.
                if (looksLikeMember(pm, &fn, bound))
                    continue;
                // Bound to a local: it must be read afterwards.
                if (hasToken(s.substr(after + 1, fn.bodyEnd - after - 1),
                             bound)) {
                    continue;
                }
                out.push_back(
                    {tu.path, lineOf(s, b), "must-check-io",
                     "'" + bound + "' binds the IoStatus of '" +
                         cs.callee +
                         "' but is never read afterwards; check "
                         ".ok() (or return it) so I/O failures "
                         "cannot pass silently"});
                continue;
            }
            // Discarded outright — including explicit (void) casts,
            // which still need an allow() comment with a rationale.
            out.push_back(
                {tu.path, lineOf(s, b), "must-check-io",
                 "result of IoStatus-returning call '" + cs.callee +
                     "' is discarded; the crash-safe I/O protocol "
                     "is void if a status is dropped — bind and "
                     "check it, return it, or suppress with a "
                     "rationale"});
        }
    }
}

// ---------------------------------------------------------------------
// parallel-capture-race
// ---------------------------------------------------------------------

namespace {

/** Identifiers declared inside a lambda body (approximate). */
std::set<std::string>
bodyLocals(const std::string &body)
{
    static const std::set<std::string> types = {
        "double",  "float",    "auto",     "bool",    "int",
        "unsigned", "signed",  "long",     "short",   "char",
        "size_t",  "int64_t",  "int32_t",  "uint32_t", "uint64_t",
        "int8_t",  "int16_t",  "ptrdiff_t", "Tensor", "Shape",
        "std"};
    std::set<std::string> locals;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= body.size(); ++i) {
        const char c = i < body.size() ? body[i] : ';';
        if (c != ';' && c != '{' && c != '}' && c != '(' && c != ')')
            continue;
        const auto toks = identTokens(body.substr(start, i - start));
        start = i + 1;
        if (toks.empty())
            continue;
        std::size_t t = 0;
        while (t < toks.size() &&
               (toks[t] == "const" || toks[t] == "static" ||
                toks[t] == "thread_local" || toks[t] == "constexpr" ||
                toks[t] == "volatile")) {
            ++t;
        }
        if (t >= toks.size() || !types.count(toks[t]))
            continue;
        while (t < toks.size() && types.count(toks[t]))
            ++t;
        if (t < toks.size())
            locals.insert(toks[t]);
    }
    return locals;
}

/** One detected write inside a parallel body. */
struct Write {
    std::string dest;     ///< base identifier written to
    std::size_t pos = 0;  ///< offset in the body
    std::string how;      ///< description for the message
    bool subscripted = false;
    bool subscriptUsesLocal = false;
    bool exempt = false;  ///< computed-lvalue/deref destination
};

/**
 * Parse the written destination ending just before `end` (exclusive,
 * ws already skipped): walks subscripts and member chains back to the
 * base identifier.
 */
Write
parseDest(const std::string &body, std::size_t end,
          const std::set<std::string> &locals)
{
    Write w;
    std::size_t i = end;
    while (true) {
        std::size_t p = prevNonWs(body, i);
        if (p == std::string::npos)
            return w;
        if (body[p] == ']') {
            const std::size_t lb = matchBack(body, p, '[', ']');
            if (lb == std::string::npos)
                return w;
            w.subscripted = true;
            for (const auto &t :
                 identTokens(body.substr(lb + 1, p - lb - 1))) {
                if (locals.count(t))
                    w.subscriptUsesLocal = true;
            }
            i = lb;
            continue;
        }
        if (body[p] == ')') {
            // Computed lvalue (deref of an expression): assume the
            // established disjoint-elements idiom.
            w.exempt = true;
            return w;
        }
        if (isIdentChar(body[p])) {
            std::size_t b = 0;
            const std::string id = identEndingAt(body, p + 1, &b);
            const std::size_t q = prevNonWs(body, b);
            if (q != std::string::npos &&
                (body[q] == '.' ||
                 (q > 0 && body[q] == '>' && body[q - 1] == '-'))) {
                i = body[q] == '.' ? q : q - 1;
                continue; // member chain: keep walking to the base
            }
            if (q != std::string::npos && body[q] == '*') {
                // Deref write through a pointer: disjoint idiom.
                w.exempt = true;
            }
            w.dest = id;
            w.pos = b;
            return w;
        }
        return w;
    }
}

const std::set<std::string> &
mutatingMethods()
{
    static const std::set<std::string> m = {
        "push_back", "emplace_back", "pop_back", "insert", "erase",
        "clear",     "resize",       "reserve",  "assign", "store",
        "fetch_add", "fetch_sub",    "exchange", "fill"};
    return m;
}

} // namespace

void
checkParallelCaptureRace(const ProjectModel &pm, const TuModel &tu,
                         std::vector<Finding> &out)
{
    const std::string &s = tu.stripped;
    for (const ParallelRegion &region : tu.parallelRegions) {
        const LambdaInfo &lam = region.lambda;
        const std::string body =
            s.substr(lam.bodyBegin, lam.bodyEnd - lam.bodyBegin);
        std::set<std::string> locals = bodyLocals(body);
        locals.insert(lam.params.begin(), lam.params.end());
        const FuncFact *fn = enclosingFunc(tu, lam.bodyBegin);

        std::vector<Write> writes;

        // Compound assignments and plain '=' writes.
        for (std::size_t i = 0; i + 1 < body.size(); ++i) {
            const char c = body[i];
            if (c != '=')
                continue;
            if (body[i + 1] == '=')
                { ++i; continue; }
            const char prev = i > 0 ? body[i - 1] : '\0';
            std::size_t destEnd = i;
            std::string how = "assigned";
            if (std::string("!<>").find(prev) != std::string::npos)
                continue;
            if (std::string("+-*/%&|^").find(prev) != std::string::npos) {
                destEnd = i - 1;
                how = std::string("'") + prev + "=' accumulated";
                if (i >= 2 &&
                    (body[i - 2] == '<' || body[i - 2] == '>')) {
                    destEnd = i - 2; // <<= >>=
                }
            }
            Write w = parseDest(body, destEnd, locals);
            if (w.dest.empty() && !w.exempt)
                continue;
            // Declaration-with-initializer: a type token directly
            // precedes the destination (`std::thread::id t = ...`).
            // The variable is a body local even when bodyLocals()
            // could not name its type.
            if (how == "assigned" && !w.subscripted && !w.dest.empty()) {
                const std::size_t before = prevNonWs(body, w.pos);
                if (before != std::string::npos &&
                    (isIdentChar(body[before]) || body[before] == '>' ||
                     body[before] == '&')) {
                    locals.insert(w.dest);
                    continue;
                }
            }
            w.how = how;
            writes.push_back(w);
        }

        // Increment / decrement.
        for (const char *op : {"++", "--"}) {
            std::size_t o = 0;
            while ((o = body.find(op, o)) != std::string::npos) {
                const std::size_t at = o;
                o += 2;
                // Postfix: ident (or subscript) directly before.
                const std::size_t p = prevNonWs(body, at);
                if (p != std::string::npos &&
                    (isIdentChar(body[p]) || body[p] == ']')) {
                    Write w = parseDest(body, p + 1, locals);
                    if (!w.dest.empty() || w.exempt) {
                        w.how = std::string("'") + op + "' mutated";
                        writes.push_back(w);
                    }
                    continue;
                }
                // Prefix: ident (with optional subscript) after.
                std::size_t q = skipWs(body, at + 2);
                if (q < body.size() && isIdentChar(body[q])) {
                    std::size_t e = q;
                    while (e < body.size() && isIdentChar(body[e]))
                        ++e;
                    Write w;
                    w.dest = body.substr(q, e - q);
                    w.pos = q;
                    w.how = std::string("'") + op + "' mutated";
                    const std::size_t br = skipWs(body, e);
                    if (br < body.size() && body[br] == '[') {
                        const std::size_t rb =
                            matchPairFwd(body, br, '[', ']');
                        if (rb != std::string::npos) {
                            w.subscripted = true;
                            for (const auto &t : identTokens(body.substr(
                                     br + 1, rb - br - 1))) {
                                if (locals.count(t))
                                    w.subscriptUsesLocal = true;
                            }
                        }
                    }
                    writes.push_back(w);
                }
            }
        }

        // Member calls: non-const methods and known mutators.
        for (std::size_t i = 0; i < body.size();) {
            if (!isIdentChar(body[i]) ||
                std::isdigit(static_cast<unsigned char>(body[i]))) {
                ++i;
                continue;
            }
            const std::size_t b = i;
            while (i < body.size() && isIdentChar(body[i]))
                ++i;
            const std::string meth = body.substr(b, i - b);
            const std::size_t lp = skipWs(body, i);
            if (lp >= body.size() || body[lp] != '(')
                continue;
            const std::size_t p = prevNonWs(body, b);
            if (p == std::string::npos)
                continue;
            const bool member =
                body[p] == '.' ||
                (p > 0 && body[p] == '>' && body[p - 1] == '-');
            if (!member)
                continue;
            const std::size_t dot = body[p] == '.' ? p : p - 1;
            const std::size_t r = prevNonWs(body, dot);
            if (r == std::string::npos || !isIdentChar(body[r]))
                continue;
            std::size_t rb = 0;
            const std::string recv = identEndingAt(body, r + 1, &rb);
            // Receiver must be a bare identifier, not a chain.
            const std::size_t rr = prevNonWs(body, rb);
            if (rr != std::string::npos &&
                (body[rr] == '.' || body[rr] == ']' ||
                 (rr > 0 && body[rr] == '>' && body[rr - 1] == '-'))) {
                continue;
            }
            if (recv.empty() || locals.count(recv))
                continue;
            const std::string type = resolveVarType(
                pm, tu, fn, recv, lam.bodyBegin + b);
            // A non-const call only counts as a write when it cannot
            // be a mere accessor: void return (in-place mutation) or
            // a known mutator name. Accessor-style overload pairs
            // (float *data() / const float *data() const) are how
            // kernels legitimately hoist pointers before the loop.
            bool mutates = false;
            const MethodFact *mf =
                type.empty() ? nullptr : pm.method(type, meth);
            if (mf)
                mutates = !mf->isConst && mf->retType == "void";
            if (!mutates)
                mutates = mutatingMethods().count(meth) > 0;
            if (!mutates)
                continue;
            Write w;
            w.dest = recv;
            w.pos = rb;
            w.how = "mutated via non-const call '." + meth + "(...)'";
            writes.push_back(w);
        }

        // Pass-by-non-const-reference to a known free function.
        for (std::size_t i = 0; i < body.size();) {
            if (!isIdentChar(body[i]) ||
                std::isdigit(static_cast<unsigned char>(body[i]))) {
                ++i;
                continue;
            }
            const std::size_t b = i;
            while (i < body.size() && isIdentChar(body[i]))
                ++i;
            const std::string callee = body.substr(b, i - b);
            const std::size_t lp = skipWs(body, i);
            if (lp >= body.size() || body[lp] != '(')
                continue;
            const std::size_t p = prevNonWs(body, b);
            if (p != std::string::npos &&
                (body[p] == '.' || body[p] == ':' ||
                 (p > 0 && body[p] == '>' && body[p - 1] == '-'))) {
                continue;
            }
            const auto fi = pm.freeFns.find(callee);
            if (fi == pm.freeFns.end() || fi->second.params.empty())
                continue;
            const std::size_t rp = matchPairFwd(body, lp, '(', ')');
            if (rp == std::string::npos)
                continue;
            // Split parameters and arguments on top-level commas.
            auto split = [](const std::string &text) {
                std::vector<std::string> parts;
                int depth = 0;
                std::size_t start = 0;
                for (std::size_t j = 0; j <= text.size(); ++j) {
                    const char c = j < text.size() ? text[j] : ',';
                    if (c == '(' || c == '<' || c == '[' || c == '{')
                        ++depth;
                    else if (c == ')' || c == '>' || c == ']' ||
                             c == '}')
                        --depth;
                    if (c == ',' && depth <= 0) {
                        parts.push_back(text.substr(start, j - start));
                        start = j + 1;
                    }
                }
                return parts;
            };
            const auto params = split(fi->second.params);
            const auto args =
                split(body.substr(lp + 1, rp - lp - 1));
            for (std::size_t a = 0;
                 a < args.size() && a < params.size(); ++a) {
                if (params[a].find('&') == std::string::npos ||
                    hasToken(params[a], "const")) {
                    continue;
                }
                const auto atoks = identTokens(args[a]);
                std::string arg = args[a];
                arg.erase(std::remove_if(
                              arg.begin(), arg.end(),
                              [](char ch) {
                                  return std::isspace(
                                      static_cast<unsigned char>(ch));
                              }),
                          arg.end());
                if (atoks.size() != 1 || atoks[0] != arg)
                    continue; // not a bare identifier
                if (locals.count(arg))
                    continue;
                Write w;
                w.dest = arg;
                w.pos = b;
                w.how = "passed by non-const reference to '" + callee +
                        "(...)'";
                writes.push_back(w);
            }
        }

        for (const Write &w : writes) {
            if (w.exempt || w.dest.empty() || locals.count(w.dest))
                continue;
            if (w.subscripted && w.subscriptUsesLocal)
                continue; // per-index write: disjoint by construction
            // std::atomic operations are synchronized by definition.
            if (resolveVarType(pm, tu, fn, w.dest,
                               lam.bodyBegin + w.pos) == "atomic") {
                continue;
            }
            // Capture analysis: only by-reference shared state races.
            bool shared = false;
            if (lam.refCaptures.count(w.dest)) {
                shared = true;
            } else if (lam.defaultRef &&
                       !lam.valueCaptures.count(w.dest)) {
                shared = true;
            } else if ((lam.capturesThis || lam.defaultValue ||
                        lam.defaultRef) &&
                       looksLikeMember(pm, fn, w.dest)) {
                shared = true; // members are shared through `this`
            }
            if (!shared)
                continue;
            out.push_back(
                {tu.path, lineOf(s, lam.bodyBegin + w.pos),
                 "parallel-capture-race",
                 "'" + w.dest + "' is " + w.how + " inside a " +
                     region.callee +
                     " body but is captured by reference and not "
                     "subscripted by a body-local index — a data "
                     "race; write through disjoint indices or use "
                     "parallelReduceOrdered"});
        }
    }
}

// ---------------------------------------------------------------------
// hot-loop-alloc
// ---------------------------------------------------------------------

void
checkHotLoopAlloc(const TuModel &tu, std::vector<Finding> &out)
{
    if (srcRelative(tu.path).empty())
        return;
    const std::string &s = tu.stripped;

    struct Region {
        std::size_t begin, end;
        const char *what;
    };
    std::vector<Region> regions;
    for (const ParallelRegion &r : tu.parallelRegions) {
        regions.push_back({r.lambda.bodyBegin, r.lambda.bodyEnd,
                           "parallelFor body"});
    }
    for (const KernelRegion &k : tu.kernelRegions)
        regions.push_back({k.begin, k.end, "ScopedKernel region"});

    std::set<std::size_t> flagged; // dedupe overlapping regions
    for (const Region &region : regions) {
        for (std::size_t i = region.begin;
             i < region.end && i < s.size();) {
            if (!isIdentChar(s[i]) ||
                std::isdigit(static_cast<unsigned char>(s[i]))) {
                ++i;
                continue;
            }
            const std::size_t b = i;
            while (i < s.size() && isIdentChar(s[i]))
                ++i;
            const std::string tok = s.substr(b, i - b);
            std::string what;
            if (tok == "new") {
                // `new` the keyword, not an identifier fragment.
                what = "heap allocation ('new')";
            } else if (tok == "malloc" || tok == "calloc" ||
                       tok == "realloc" || tok == "make_unique" ||
                       tok == "make_shared") {
                if (skipWs(s, i) < s.size() &&
                    (s[skipWs(s, i)] == '(' || s[skipWs(s, i)] == '<')) {
                    what = "heap allocation ('" + tok + "')";
                }
            } else if (tok == "Tensor") {
                const std::size_t n = skipWs(s, i);
                if (n >= s.size())
                    continue;
                if (s[n] == '(') {
                    what = "Tensor construction"; // temporary
                } else if (isIdentChar(s[n]) &&
                           !std::isdigit(
                               static_cast<unsigned char>(s[n]))) {
                    std::size_t e = n;
                    while (e < s.size() && isIdentChar(s[e]))
                        ++e;
                    const std::size_t t = skipWs(s, e);
                    if (t < s.size() &&
                        (s[t] == '(' || s[t] == '{' || s[t] == '=' ||
                         s[t] == ';')) {
                        what = "Tensor construction";
                    }
                }
            }
            if (what.empty() || !flagged.insert(b).second)
                continue;
            out.push_back(
                {tu.path, lineOf(s, b), "hot-loop-alloc",
                 what + " inside a " + region.what +
                     " defeats the arena discipline; hoist the "
                     "buffer out of the hot region (or plan it in "
                     "the graph executor's arena)"});
        }
    }
}

// ---------------------------------------------------------------------
// env-registry
// ---------------------------------------------------------------------

std::map<std::string, int>
parseEnvDoc(const std::string &text)
{
    std::map<std::string, int> knobs;
    std::istringstream is(text);
    std::string ln;
    int line = 0;
    while (std::getline(is, ln)) {
        ++line;
        const std::size_t h = ln.find_first_not_of(" \t");
        if (h == std::string::npos || ln[h] != '|')
            continue;
        // First cell only: the knob column.
        const std::size_t cellEnd = ln.find('|', h + 1);
        const std::string cell =
            ln.substr(h + 1, cellEnd == std::string::npos
                                 ? std::string::npos
                                 : cellEnd - h - 1);
        const std::size_t at = cell.find("BERTPROF_");
        if (at == std::string::npos)
            continue;
        std::size_t e = at;
        while (e < cell.size() &&
               (std::isupper(static_cast<unsigned char>(cell[e])) ||
                std::isdigit(static_cast<unsigned char>(cell[e])) ||
                cell[e] == '_')) {
            ++e;
        }
        const std::string knob = cell.substr(at, e - at);
        if (knob.size() > 9 && !knobs.count(knob))
            knobs[knob] = line;
    }
    return knobs;
}

void
checkEnvReads(const TuModel &tu,
              const std::map<std::string, int> &docKnobs,
              std::vector<Finding> &out)
{
    if (srcRelative(tu.path).empty())
        return;
    for (const EnvRead &read : tu.envReads) {
        if (read.knob.empty() || docKnobs.count(read.knob))
            continue;
        out.push_back(
            {tu.path, read.line, "env-registry",
             "env knob '" + read.knob + "' is read here (via " +
                 read.via +
                 ") but missing from the README BERTPROF_* table; "
                 "document it so the registry cannot rot"});
    }
}

void
checkEnvDoc(const ProjectModel &pm, const std::string &envDocPath,
            const std::map<std::string, int> &docKnobs,
            std::vector<Finding> &out)
{
    std::set<std::string> read;
    for (const TuModel &tu : pm.tus) {
        if (srcRelative(tu.path).empty())
            continue;
        for (const EnvRead &r : tu.envReads)
            read.insert(r.knob);
    }
    for (const auto &kv : docKnobs) {
        if (read.count(kv.first))
            continue;
        out.push_back(
            {envDocPath, kv.second, "env-registry",
             "'" + kv.first +
                 "' is documented in the BERTPROF_* table but never "
                 "read in src/; remove the row or wire the knob "
                 "through runtime/env.h"});
    }
}

// ---------------------------------------------------------------------
// include-dag
// ---------------------------------------------------------------------

namespace {

/**
 * Transitive closure of the layer map: a layer may transitively
 * reach anything its allowed layers reach — including a dependency's
 * headers inevitably drags that dependency's own includes, so the
 * strict direct ordering is enforced by include-hygiene while the
 * transitive rule enforces the closure (which still forbids cycles,
 * anything reaching serve, or compute layers reaching telemetry).
 */
const std::map<std::string, std::set<std::string>> &
layerClosure()
{
    static const std::map<std::string, std::set<std::string>> closed =
        [] {
            std::map<std::string, std::set<std::string>> m = layerMap();
            bool changed = true;
            while (changed) {
                changed = false;
                for (auto &kv : m) {
                    std::set<std::string> grown = kv.second;
                    for (const auto &dep : kv.second) {
                        const auto di = m.find(dep);
                        if (di == m.end())
                            continue;
                        grown.insert(di->second.begin(),
                                     di->second.end());
                    }
                    if (grown.size() != kv.second.size()) {
                        kv.second = std::move(grown);
                        changed = true;
                    }
                }
            }
            return m;
        }();
    return closed;
}

} // namespace

void
checkIncludeDag(const ProjectModel &pm, std::vector<Finding> &out)
{
    const auto &layers = layerClosure();

    // Cycles first: a cyclic graph has no layering to speak of.
    for (const auto &cycle : pm.findIncludeCycles()) {
        std::string chain;
        for (const auto &n : cycle)
            chain += n + " -> ";
        chain += cycle.front();
        const auto pi = pm.nodePath.find(cycle.front());
        out.push_back(
            {pi != pm.nodePath.end() ? pi->second
                                     : "src/" + cycle.front(),
             1, "include-dag", "include cycle: " + chain});
    }

    for (const TuModel &tu : pm.tus) {
        const std::string node = srcRelative(tu.path);
        if (node.empty())
            continue;
        const std::size_t slash = node.find('/');
        if (slash == std::string::npos)
            continue;
        const std::string layer = node.substr(0, slash);
        const auto li = layers.find(layer);
        if (li == layers.end())
            continue;
        // Layers already reported by the direct include-hygiene rule.
        std::set<std::string> direct;
        for (const IncludeEdge &inc : tu.includes) {
            const std::size_t ts = inc.target.find('/');
            if (ts != std::string::npos)
                direct.insert(inc.target.substr(0, ts));
        }
        // BFS so the reported chain is a shortest include path.
        std::map<std::string, std::string> parent;
        std::deque<std::string> work;
        work.push_back(node);
        parent[node] = "";
        std::set<std::string> reportedLayers;
        while (!work.empty()) {
            const std::string cur = work.front();
            work.pop_front();
            const auto ei = pm.includeGraph.find(cur);
            if (ei == pm.includeGraph.end())
                continue;
            for (const std::string &next : ei->second) {
                if (parent.count(next))
                    continue;
                parent[next] = cur;
                work.push_back(next);
                const std::size_t ts = next.find('/');
                if (ts == std::string::npos)
                    continue;
                const std::string tlayer = next.substr(0, ts);
                if (!layers.count(tlayer) || li->second.count(tlayer))
                    continue;
                if (layerExceptions().count(next))
                    continue;
                if (direct.count(tlayer))
                    continue; // include-hygiene reports the direct edge
                if (!reportedLayers.insert(tlayer).second)
                    continue;
                // Reconstruct the chain for the message.
                std::vector<std::string> chain = {next};
                for (std::string at = cur; !at.empty();
                     at = parent[at]) {
                    chain.push_back(at);
                }
                std::string text;
                for (auto it = chain.rbegin(); it != chain.rend();
                     ++it) {
                    text += (it == chain.rbegin() ? "" : " -> ") + *it;
                }
                // The finding anchors at the direct include that
                // starts the chain (chain[last-1] after reversal).
                int line = 1;
                const std::string &first =
                    chain.size() >= 2 ? chain[chain.size() - 2] : next;
                for (const IncludeEdge &inc : tu.includes) {
                    if (inc.target == first) {
                        line = inc.line;
                        break;
                    }
                }
                out.push_back(
                    {tu.path, line, "include-dag",
                     "src/" + layer +
                         " transitively includes layer '" + tlayer +
                         "' which is not below it in the dependency "
                         "DAG (" +
                         text +
                         "); break the chain or restructure the "
                         "layers"});
            }
        }
    }
}

} // namespace bplint
