/**
 * @file
 * bplint v2 phase-1/phase-2 source model.
 *
 * Phase 1 (buildTuModel) tokenizes one translation unit into a
 * lightweight semantic model: comment/string-stripped text, a
 * brace-matched scope tree, namespace-scope function definitions,
 * class facts (method return types + constness, member variable
 * types), free-function declarations, include edges, BERTPROF_* env
 * read sites, lambda capture lists of parallelFor/parallelFor2d
 * bodies, and ScopedKernel regions.
 *
 * Phase 2 (buildProjectModel) merges the per-TU facts into a
 * cross-TU model: a project-wide class/method table (so a call
 * `file_.sync()` in telemetry resolves against the AppendFile
 * declaration in io/append_file.h), the set of IoStatus-returning
 * functions, and the real file-level include graph with transitive
 * reachability and cycle detection.
 *
 * Everything here is deliberately heuristic — it is a linter's view
 * of C++, not a compiler's — but each fact is conservative enough
 * that the rules built on top (lint.h) hold a zero-false-positive
 * bar on this repo's idiom.
 */

#ifndef BERTPROF_TOOLS_BPLINT_MODEL_H
#define BERTPROF_TOOLS_BPLINT_MODEL_H

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace bplint {

/** True for [A-Za-z0-9_]. */
bool isIdentChar(char c);

/** 1-based line number of a character offset. */
int lineOf(const std::string &text, std::size_t pos);

/** All identifier tokens in `s`, in order. */
std::vector<std::string> identTokens(const std::string &s);

/** Whether `s` contains `tok` as a whole identifier token. */
bool hasToken(const std::string &s, const std::string &tok);

/** Line-level suppressions harvested from bplint directives. */
struct Suppressions {
    std::set<std::string> fileRules;
    /// line -> rules allowed on that line and the one after it.
    std::map<int, std::set<std::string>> lineRules;

    bool allows(const std::string &rule, int line) const;
};

/** One string literal in the original text (blanked in `stripped`). */
struct StringLit {
    std::size_t pos = 0; ///< offset of the opening quote
    std::string text;    ///< raw contents (escapes not decoded)
};

/** One node of the brace-matched scope tree over the stripped text. */
struct Scope {
    std::size_t begin = 0; ///< offset of '{' (0 for the file scope)
    std::size_t end = 0;   ///< offset one past the matching '}'
    int parent = -1;       ///< index into TuModel::scopes, -1 = root
};

/** One quoted #include directive. */
struct IncludeEdge {
    std::string target; ///< include string, e.g. "io/binary_io.h"
    int line = 0;
};

/** One BERTPROF_* environment read site. */
struct EnvRead {
    std::string knob; ///< e.g. "BERTPROF_NUM_THREADS"
    std::string via;  ///< envInt | envString | getenv
    int line = 0;
};

/** Parsed lambda capture list + parameters + body span. */
struct LambdaInfo {
    bool defaultRef = false;   ///< [&...]
    bool defaultValue = false; ///< [=...]
    bool capturesThis = false; ///< [this] / [*this]
    std::set<std::string> refCaptures;   ///< [&x]
    std::set<std::string> valueCaptures; ///< [x], [x = expr]
    std::set<std::string> params;        ///< parameter names
    std::size_t bodyBegin = 0;           ///< first char inside '{'
    std::size_t bodyEnd = 0;             ///< offset of the closing '}'
    int line = 0;
};

/** A parallelFor / parallelFor2d call with its body lambda. */
struct ParallelRegion {
    std::string callee; ///< parallelFor | parallelFor2d
    LambdaInfo lambda;
};

/** From a ScopedKernel declaration to the end of its brace scope. */
struct KernelRegion {
    std::size_t begin = 0; ///< one past the decl statement's ';'
    std::size_t end = 0;   ///< enclosing scope end
    int line = 0;          ///< line of the declaration
};

/** Return type + qualifiers of one declared function or method. */
struct MethodFact {
    std::string retType;        ///< first type token of the return type
    bool isConst = false;       ///< trailing const (methods only)
    bool returnsIoStatus = false;
    std::string params;         ///< raw parameter list text
};

/** Facts about one class/struct seen anywhere in the project. */
struct ClassFact {
    std::map<std::string, MethodFact> methods;
    std::map<std::string, std::string> memberTypes; ///< name -> type tok
};

/** One namespace-scope function definition in a TU. */
struct FuncFact {
    std::string name;      ///< as written, possibly "Class::name"
    std::string className; ///< "" for free functions
    std::string bareName;  ///< name without the class qualifier
    std::string ret;
    std::string params;
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;
    int line = 0;
    bool anonOrStatic = false; ///< internal linkage: exempt from rules
};

/** The phase-1 model of one translation unit. */
struct TuModel {
    std::string path;     ///< repo-relative report path
    std::string original; ///< raw file text
    std::string stripped; ///< comments/strings blanked, newlines kept
    Suppressions supp;
    std::vector<StringLit> strings;
    std::vector<Scope> scopes; ///< scopes[0] is the whole file
    std::vector<IncludeEdge> includes;
    std::vector<EnvRead> envReads;
    std::vector<FuncFact> funcs;
    std::vector<ParallelRegion> parallelRegions;
    std::vector<KernelRegion> kernelRegions;
    std::map<std::string, ClassFact> classes;
    std::map<std::string, MethodFact> freeFns; ///< namespace-scope decls

    /** Index of the innermost scope containing `pos` (0 = file). */
    int innermostScope(std::size_t pos) const;

    /** End offset of the innermost brace scope containing `pos`. */
    std::size_t enclosingScopeEnd(std::size_t pos) const;
};

/** Build the phase-1 model for one TU. */
TuModel buildTuModel(const std::string &path, const std::string &text);

/** One input file for a project-wide lint. */
struct SourceFile {
    std::string path; ///< repo-relative report path
    std::string text;
};

/** The phase-2 cross-TU model. */
struct ProjectModel {
    std::vector<TuModel> tus;

    /// Merged class facts across every TU (headers included).
    std::map<std::string, ClassFact> classes;
    /// Merged namespace-scope function facts (decls + definitions).
    std::map<std::string, MethodFact> freeFns;

    /// File-level include graph over src-relative node names
    /// ("io/binary_io.h"). Nodes exist for every scanned src/ file
    /// and for every quoted, layer-qualified include target.
    std::map<std::string, std::vector<std::string>> includeGraph;
    /// Node name -> report path of the scanned TU (when present).
    std::map<std::string, std::string> nodePath;

    /** Method fact for `type::method`, or nullptr. */
    const MethodFact *method(const std::string &type,
                             const std::string &methodName) const;

    /** Every node reachable from `node` via includes (excl. itself). */
    std::set<std::string> reachable(const std::string &node) const;

    /**
     * Distinct include cycles, each reported once as the node chain
     * a -> b -> ... -> a (rotated so the smallest name leads).
     */
    std::vector<std::vector<std::string>> findIncludeCycles() const;
};

/** Build the phase-2 model over a set of files. */
ProjectModel buildProjectModel(const std::vector<SourceFile> &files);

/**
 * Node name of a src-tree path: "src/io/x.h" -> "io/x.h"; "" when the
 * path is not under src/.
 */
std::string srcRelative(const std::string &path);

} // namespace bplint

#endif // BERTPROF_TOOLS_BPLINT_MODEL_H
