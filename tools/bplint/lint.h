/**
 * @file
 * bplint: repo-specific invariant linter for the bertprof tree.
 *
 * A deliberately lexical checker — it strips comments and string
 * literals (so rule names inside literals never fire), then applies
 * rules that encode this repo's correctness contracts:
 *
 *   wall-clock            no std::chrono::system_clock /
 *                         high_resolution_clock in measured code;
 *                         util/stopwatch.h (steady_clock) is the one
 *                         sanctioned timer.
 *   libc-rand             no rand()/srand(); util/rng.h only, so
 *                         every stream is seeded and reproducible.
 *   kernel-stats          every public kernel entry in src/ops/ .cc
 *                         that touches Tensors returns KernelStats
 *                         (or a stats-bearing result struct) — the
 *                         operator accounting the perf model trusts.
 *   op-entry-contract     every such entry states preconditions via
 *                         BP_REQUIRE / BP_CHECK_* before computing.
 *   parallel-shared-accum no compound assignment to a captured,
 *                         unsubscripted variable inside a
 *                         parallelFor/parallelFor2d body (shared
 *                         accumulators belong in
 *                         parallelReduceOrdered).
 *   include-hygiene       src/<layer> may only include the layers
 *                         below it in the dependency DAG; nothing
 *                         includes src/core except core itself.
 *   unchecked-io          no raw fopen/fwrite/fread/ofstream/fstream
 *                         in src/ outside src/io/ — file writes must
 *                         go through the crash-safe, checked I/O
 *                         layer (io/binary_io.h).
 *
 * Suppressions (per line, or whole file near the top):
 *   // bplint: allow(rule-name)
 *   // bplint: allow-file(rule-name)
 *
 * The library half is linked by tests/test_bplint.cc so each rule is
 * unit-tested against known-bad snippets without shelling out.
 */

#ifndef BERTPROF_TOOLS_BPLINT_LINT_H
#define BERTPROF_TOOLS_BPLINT_LINT_H

#include <string>
#include <vector>

namespace bplint {

/** One rule violation at a source location. */
struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Names of every implemented rule, in report order. */
std::vector<std::string> ruleNames();

/**
 * Lint one translation unit. `path` is the repo-relative path (used
 * both for reporting and for path-scoped rules: ops rules fire only
 * under src/ops/, include hygiene only under src/); `text` is the
 * file's contents.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text);

/** Lint a file on disk (path used for scoping as in lintSource). */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &reportPath);

/**
 * Replace comments and string/char literals with spaces, preserving
 * newlines (so findings keep their line numbers). Exposed for tests.
 */
std::string stripCommentsAndStrings(const std::string &text);

/** Render findings: "file:line: [rule] message" per line. */
std::string formatText(const std::vector<Finding> &findings);

/** Render findings as a JSON array (machine-readable). */
std::string formatJson(const std::vector<Finding> &findings);

} // namespace bplint

#endif // BERTPROF_TOOLS_BPLINT_LINT_H
