/**
 * @file
 * bplint: repo-specific invariant linter for the bertprof tree.
 *
 * v2 is a two-phase semantic analyzer. Phase 1 (model.h) tokenizes
 * each TU into a lightweight statement/scope/function model; phase 2
 * merges the TUs into a cross-TU ProjectModel (real include graph,
 * class/method facts, BERTPROF_* env-read sites) so rules can reason
 * about dataflow and project structure, not just tokens:
 *
 *   wall-clock            no std::chrono::system_clock /
 *                         high_resolution_clock in measured code;
 *                         util/stopwatch.h (steady_clock) is the one
 *                         sanctioned timer.
 *   libc-rand             no rand()/srand(); util/rng.h only, so
 *                         every stream is seeded and reproducible.
 *   kernel-stats          every public kernel entry in src/ops/ .cc
 *                         that touches Tensors returns KernelStats
 *                         (or a stats-bearing result struct) — the
 *                         operator accounting the perf model trusts.
 *   op-entry-contract     every such entry states preconditions via
 *                         BP_REQUIRE / BP_CHECK_* before computing.
 *   parallel-capture-race any write (assignment, ++/--, non-const
 *                         member call, pass-by-non-const-ref) to a
 *                         by-reference captured variable not
 *                         subscripted by a body-local index inside a
 *                         parallelFor/parallelFor2d body.
 *   hot-loop-alloc        no Tensor construction or heap allocation
 *                         in parallelFor bodies or ScopedKernel
 *                         regions (src/): the graph executor's arena
 *                         discipline must hold in hot code.
 *   must-check-io         an IoStatus-returning call whose result is
 *                         neither bound-and-read nor returned drops
 *                         an I/O failure on the floor (src/ .cc).
 *                         (void)-casts still fire: intentional drops
 *                         need an allow() comment with a rationale.
 *   env-registry          two-way sync between BERTPROF_* knobs read
 *                         in src/ (envInt/envString/getenv) and the
 *                         README's authoritative table. Active only
 *                         when an env doc is supplied (--env-doc).
 *   include-hygiene       src/<layer> may only directly include the
 *                         layers below it in the dependency DAG.
 *   include-dag           the same ordering enforced transitively
 *                         over the real include graph, plus include
 *                         cycle detection.
 *   unchecked-io          no raw fopen/fwrite/fread/ofstream/fstream
 *                         in src/ outside src/io/ — file writes must
 *                         go through the crash-safe, checked I/O
 *                         layer (io/binary_io.h).
 *   arena-escape          Tensor::borrow confined to src/graph (and
 *                         the tensor layer that defines it).
 *
 * Suppressions (per line, or whole file near the top):
 *   // bplint: allow(rule-name)
 *   // bplint: allow-file(rule-name)
 *
 * Incremental adoption: --baseline subtracts previously-recorded
 * findings (file|rule|message keys, line-number independent) and
 * --sarif emits a SARIF 2.1.0 artifact for code-scanning UIs.
 *
 * The library half is linked by tests/test_bplint.cc so each rule is
 * unit-tested against known-bad snippets without shelling out.
 */

#ifndef BERTPROF_TOOLS_BPLINT_LINT_H
#define BERTPROF_TOOLS_BPLINT_LINT_H

#include <string>
#include <vector>

#include "model.h"

namespace bplint {

/** One rule violation at a source location. */
struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Names of every implemented rule, in report order. */
std::vector<std::string> ruleNames();

/** Options for a project-wide lint. */
struct LintOptions {
    /// Report path of the env-knob document (README.md). Empty text
    /// disables the env-registry rule entirely.
    std::string envDocPath;
    std::string envDocText;
};

/**
 * Lint a set of translation units as one project: builds the cross-TU
 * ProjectModel, runs every rule, applies suppressions, and returns
 * the findings sorted by (file, line, rule). Paths are repo-relative
 * (used for reporting and for path-scoped rules).
 */
std::vector<Finding> lintProject(const std::vector<SourceFile> &files,
                                 const LintOptions &opts);

/**
 * Lint one translation unit in isolation (a single-file project).
 * Cross-TU rules see only this file's own facts.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text);

/** Lint a file on disk (path used for scoping as in lintSource). */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &reportPath);

/**
 * Replace comments and string/char literals with spaces, preserving
 * newlines (so findings keep their line numbers). Exposed for tests.
 */
std::string stripCommentsAndStrings(const std::string &text);

/** Render findings: "file:line: [rule] message" per line. */
std::string formatText(const std::vector<Finding> &findings);

/** Render findings as a JSON array (machine-readable). */
std::string formatJson(const std::vector<Finding> &findings);

/** Render findings as a SARIF 2.1.0 log. */
std::string formatSarif(const std::vector<Finding> &findings);

/** Baseline key of one finding: "file|rule|message" (no line). */
std::string baselineKey(const Finding &f);

/** Render findings as sorted baseline lines (one key per line). */
std::string formatBaseline(const std::vector<Finding> &findings);

/**
 * Subtract a baseline: each baseline line excuses one matching
 * finding (multiset semantics). Returns the findings that remain.
 */
std::vector<Finding> applyBaseline(const std::vector<Finding> &findings,
                                   const std::string &baselineText);

} // namespace bplint

#endif // BERTPROF_TOOLS_BPLINT_LINT_H
