/**
 * @file
 * bplint CLI. Usage:
 *
 *   bplint [--json] [--list-rules] <path>...
 *
 * Each path may be a file or a directory (scanned recursively for
 * .cc/.h/.cpp/.hpp, skipping build and hidden directories). Exits
 * 0 when clean, 1 when any finding survives suppression, 2 on usage
 * or I/O errors. Designed to finish in well under a second on this
 * tree so it can run as a tier-1 CTest (label: lint).
 */

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool
skipDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 || name.rfind(".", 0) == 0 ||
           name == "results";
}

void
collect(const fs::path &root, std::vector<fs::path> &files)
{
    if (fs::is_regular_file(root)) {
        if (isSourceFile(root))
            files.push_back(root);
        return;
    }
    if (!fs::is_directory(root))
        return;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skipDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            files.push_back(it->path());
    }
}

/** Path as reported: relative to the repo root when recognizable. */
std::string
reportPath(const fs::path &p)
{
    const std::string s = p.generic_string();
    for (const char *anchor : {"/src/", "/bench/", "/tests/",
                               "/examples/", "/tools/"}) {
        const std::size_t at = s.rfind(anchor);
        if (at != std::string::npos)
            return s.substr(at + 1);
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const auto &r : bplint::ruleNames())
                std::cout << r << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: bplint [--json] [--list-rules] <path>...\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "bplint: unknown option " << arg << "\n";
            return 2;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty()) {
        std::cerr << "usage: bplint [--json] [--list-rules] <path>...\n";
        return 2;
    }

    std::vector<fs::path> files;
    for (const auto &r : roots) {
        if (!fs::exists(r)) {
            std::cerr << "bplint: no such path: " << r << "\n";
            return 2;
        }
        collect(r, files);
    }

    std::vector<bplint::Finding> findings;
    for (const auto &f : files) {
        auto fs_ = bplint::lintFile(f.string(), reportPath(f));
        findings.insert(findings.end(), fs_.begin(), fs_.end());
    }

    if (json) {
        std::cout << bplint::formatJson(findings);
    } else {
        std::cout << bplint::formatText(findings);
        std::cout << "bplint: " << files.size() << " files, "
                  << findings.size() << " finding"
                  << (findings.size() == 1 ? "" : "s") << "\n";
    }
    return findings.empty() ? 0 : 1;
}
