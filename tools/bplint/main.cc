/**
 * @file
 * bplint CLI. Usage:
 *
 *   bplint [--json] [--list-rules] [--sarif <path>]
 *          [--baseline <path>] [--write-baseline <path>]
 *          [--env-doc <path>] <path>...
 *
 * Each path may be a file or a directory (scanned recursively for
 * .cc/.h/.cpp/.hpp, skipping build and hidden directories). All
 * collected files are analyzed as ONE project, so cross-TU rules
 * (must-check-io receiver resolution, include-dag, env-registry) see
 * the whole tree. Exits 0 when clean, 1 when any finding survives
 * suppression and baseline subtraction, 2 on usage or I/O errors.
 * Designed to finish in well under two seconds on this tree so it can
 * run as a tier-1 CTest (label: lint).
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool
skipDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 || name.rfind(".", 0) == 0 ||
           name == "results";
}

void
collect(const fs::path &root, std::vector<fs::path> &files)
{
    if (fs::is_regular_file(root)) {
        if (isSourceFile(root))
            files.push_back(root);
        return;
    }
    if (!fs::is_directory(root))
        return;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skipDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            files.push_back(it->path());
    }
}

/** Path as reported: relative to the repo root when recognizable. */
std::string
reportPath(const fs::path &p)
{
    const std::string s = p.generic_string();
    for (const char *anchor : {"/src/", "/bench/", "/tests/",
                               "/examples/", "/tools/"}) {
        const std::size_t at = s.rfind(anchor);
        if (at != std::string::npos)
            return s.substr(at + 1);
    }
    return s;
}

bool
readWholeFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

void
usage(std::ostream &os)
{
    os << "usage: bplint [--json] [--list-rules] [--sarif <path>]\n"
          "              [--baseline <path>] [--write-baseline <path>]\n"
          "              [--env-doc <path>] <path>...\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string sarifPath, baselinePath, writeBaselinePath, envDocPath;
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto optValue = [&](std::string &slot) {
            if (i + 1 >= argc) {
                std::cerr << "bplint: " << arg << " needs a path\n";
                return false;
            }
            slot = argv[++i];
            return true;
        };
        if (arg == "--json") {
            json = true;
        } else if (arg == "--list-rules") {
            for (const auto &r : bplint::ruleNames())
                std::cout << r << "\n";
            return 0;
        } else if (arg == "--sarif") {
            if (!optValue(sarifPath))
                return 2;
        } else if (arg == "--baseline") {
            if (!optValue(baselinePath))
                return 2;
        } else if (arg == "--write-baseline") {
            if (!optValue(writeBaselinePath))
                return 2;
        } else if (arg == "--env-doc") {
            if (!optValue(envDocPath))
                return 2;
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "bplint: unknown option " << arg << "\n";
            return 2;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty()) {
        usage(std::cerr);
        return 2;
    }

    std::vector<fs::path> files;
    for (const auto &r : roots) {
        if (!fs::exists(r)) {
            std::cerr << "bplint: no such path: " << r << "\n";
            return 2;
        }
        collect(r, files);
    }

    std::vector<bplint::SourceFile> sources;
    sources.reserve(files.size());
    for (const auto &f : files) {
        std::string text;
        if (!readWholeFile(f, text)) {
            std::cerr << "bplint: cannot read " << f << "\n";
            return 2;
        }
        sources.push_back({reportPath(f), std::move(text)});
    }

    bplint::LintOptions opts;
    if (!envDocPath.empty()) {
        if (!readWholeFile(envDocPath, opts.envDocText)) {
            std::cerr << "bplint: cannot read env doc " << envDocPath
                      << "\n";
            return 2;
        }
        opts.envDocPath = reportPath(envDocPath);
        if (opts.envDocPath.empty())
            opts.envDocPath = envDocPath;
    }

    std::vector<bplint::Finding> findings =
        bplint::lintProject(sources, opts);

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath, std::ios::binary);
        if (!out) {
            std::cerr << "bplint: cannot write baseline "
                      << writeBaselinePath << "\n";
            return 2;
        }
        out << bplint::formatBaseline(findings);
    }
    if (!baselinePath.empty()) {
        std::string baselineText;
        if (!readWholeFile(baselinePath, baselineText)) {
            std::cerr << "bplint: cannot read baseline " << baselinePath
                      << "\n";
            return 2;
        }
        findings = bplint::applyBaseline(findings, baselineText);
    }
    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath, std::ios::binary);
        if (!out) {
            std::cerr << "bplint: cannot write sarif " << sarifPath
                      << "\n";
            return 2;
        }
        out << bplint::formatSarif(findings);
    }

    if (json) {
        std::cout << bplint::formatJson(findings);
    } else {
        std::cout << bplint::formatText(findings);
        std::cout << "bplint: " << files.size() << " files, "
                  << findings.size() << " finding"
                  << (findings.size() == 1 ? "" : "s") << "\n";
    }
    return findings.empty() ? 0 : 1;
}
