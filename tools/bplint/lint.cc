#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "model.h"
#include "rules.h"

namespace bplint {

namespace {

// ---------------------------------------------------------------------------
// Token rules: wall-clock, libc-rand
// ---------------------------------------------------------------------------

void
checkForbiddenTokens(const TuModel &tu, std::vector<Finding> &out)
{
    const std::string &s = tu.stripped;
    const std::string &path = tu.path;
    std::size_t i = 0;
    while (i < s.size()) {
        if (!isIdentChar(s[i]) ||
            std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            continue;
        }
        std::size_t b = i;
        while (i < s.size() && isIdentChar(s[i]))
            ++i;
        const std::string tok = s.substr(b, i - b);

        auto nextNonSpace = [&]() -> char {
            std::size_t j = i;
            while (j < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[j]))) {
                ++j;
            }
            return j < s.size() ? s[j] : '\0';
        };
        auto isMemberAccess = [&]() {
            std::size_t j = b;
            while (j > 0 &&
                   std::isspace(static_cast<unsigned char>(s[j - 1]))) {
                --j;
            }
            if (j == 0)
                return false;
            if (s[j - 1] == '.')
                return true;
            return j >= 2 && s[j - 2] == '-' && s[j - 1] == '>';
        };

        if (tok == "system_clock" || tok == "high_resolution_clock" ||
            tok == "gettimeofday") {
            out.push_back({path, lineOf(s, b), "wall-clock",
                           "'" + tok +
                               "' is wall-clock time; measured code must "
                               "use util/stopwatch.h (steady_clock)"});
        } else if (tok == "clock" && nextNonSpace() == '(' &&
                   !isMemberAccess()) {
            out.push_back({path, lineOf(s, b), "wall-clock",
                           "libc clock() is unsanctioned; use "
                           "util/stopwatch.h (steady_clock)"});
        } else if ((tok == "rand" || tok == "srand") &&
                   nextNonSpace() == '(' && !isMemberAccess()) {
            out.push_back({path, lineOf(s, b), "libc-rand",
                           "'" + tok +
                               "()' breaks seeded reproducibility; use "
                               "util/rng.h (Rng)"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rules: kernel-stats, op-entry-contract (src/ops/*.cc only)
// ---------------------------------------------------------------------------

void
checkOpsKernels(const TuModel &tu, std::vector<Finding> &out)
{
    if (tu.path.find("src/ops/") == std::string::npos ||
        tu.path.size() <= 3 ||
        tu.path.compare(tu.path.size() - 3, 3, ".cc") != 0) {
        return;
    }
    for (const FuncFact &f : tu.funcs) {
        if (f.anonOrStatic || !hasToken(f.params, "Tensor"))
            continue;
        const std::string body = tu.stripped.substr(
            f.bodyBegin, f.bodyEnd - f.bodyBegin);
        const bool reports = hasToken(f.ret, "KernelStats") ||
                             f.ret.find("Result") != std::string::npos;
        if (!reports) {
            out.push_back(
                {tu.path, f.line, "kernel-stats",
                 "kernel entry '" + f.name +
                     "' takes Tensors but does not return KernelStats "
                     "(or a *Result carrying stats); the perf model's "
                     "operator accounting depends on it"});
        }
        if (!hasToken(body, "BP_REQUIRE") &&
            body.find("BP_CHECK_") == std::string::npos) {
            out.push_back(
                {tu.path, f.line, "op-entry-contract",
                 "kernel entry '" + f.name +
                     "' has no BP_REQUIRE/BP_CHECK_* precondition; "
                     "every public op must validate shapes/aliasing "
                     "before computing"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-io
// ---------------------------------------------------------------------------

void
checkUncheckedIo(const TuModel &tu, std::vector<Finding> &out)
{
    // Raw file I/O outside src/io/ bypasses the crash-safe write
    // protocol (temp + fsync + atomic rename), the typed IoStatus
    // errors, and the io.* fault-injection sites. The io layer is
    // the one place allowed to touch stdio/fstream directly.
    const std::string &path = tu.path;
    const std::string &s = tu.stripped;
    const std::size_t sp = path.rfind("src/");
    if (sp == std::string::npos)
        return;
    if (path.compare(sp, 7, "src/io/") == 0)
        return;
    static const std::set<std::string> primitives = {
        "fopen", "fwrite", "fread", "ofstream", "fstream"};
    std::size_t i = 0;
    while (i < s.size()) {
        if (!isIdentChar(s[i]) ||
            std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            continue;
        }
        std::size_t b = i;
        while (i < s.size() && isIdentChar(s[i]))
            ++i;
        const std::string tok = s.substr(b, i - b);
        if (!primitives.count(tok))
            continue;
        out.push_back(
            {path, lineOf(s, b), "unchecked-io",
             "'" + tok +
                 "' outside src/io/ bypasses the crash-safe, "
                 "checked I/O layer; route file writes through "
                 "io/binary_io.h (writeFileAtomic / writeTextFile)"});
    }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene (direct includes; include-dag covers transitive)
// ---------------------------------------------------------------------------

void
checkIncludeHygiene(const TuModel &tu, std::vector<Finding> &out)
{
    const std::size_t sp = tu.path.rfind("src/");
    if (sp == std::string::npos)
        return; // hygiene applies to the library tree only
    const std::string rel = tu.path.substr(sp + 4);
    const std::size_t slash = rel.find('/');
    if (slash == std::string::npos)
        return;
    const std::string layer = rel.substr(0, slash);
    const auto it = layerMap().find(layer);
    if (it == layerMap().end())
        return;

    for (const IncludeEdge &inc : tu.includes) {
        const std::size_t tslash = inc.target.find('/');
        if (tslash == std::string::npos)
            continue; // same-directory include
        const std::string tlayer = inc.target.substr(0, tslash);
        if (!layerMap().count(tlayer))
            continue; // not a layer-qualified include
        if (it->second.count(tlayer) ||
            layerExceptions().count(inc.target)) {
            continue;
        }
        out.push_back(
            {tu.path, inc.line, "include-hygiene",
             "src/" + layer + " must not include \"" + inc.target +
                 "\": layer '" + tlayer +
                 "' is not below it in the dependency DAG (route "
                 "shared functionality through a lower layer or "
                 "src/core)"});
    }
}

// ---------------------------------------------------------------------------
// Rule: arena-escape
// ---------------------------------------------------------------------------

// Tensor::borrow wraps raw arena storage in a non-owning view whose
// lifetime is bounded by the executor's plan. Only the graph layer
// (which owns the arena) and the tensor layer (which defines the
// type) may mint such views; anywhere else a borrowed view could
// outlive its backing buffer.
void
checkArenaEscape(const TuModel &tu, std::vector<Finding> &out)
{
    const std::string &path = tu.path;
    const std::string &s = tu.stripped;
    const std::size_t sp = path.rfind("src/");
    if (sp == std::string::npos)
        return;
    const std::string rel = path.substr(sp + 4);
    if (rel.rfind("graph/", 0) == 0 || rel.rfind("tensor/", 0) == 0)
        return;
    std::size_t pos = 0;
    while ((pos = s.find("Tensor::borrow", pos)) != std::string::npos) {
        out.push_back(
            {path, lineOf(s, pos), "arena-escape",
             "Tensor::borrow outside src/graph creates a non-owning "
             "view that can outlive its arena; only the graph "
             "executor may bind borrowed storage"});
        pos += 14;
    }
}

void
sortFindings(std::vector<Finding> &v)
{
    std::sort(v.begin(), v.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
}

} // namespace

const std::map<std::string, std::set<std::string>> &
layerMap()
{
    static const std::map<std::string, std::set<std::string>> m = {
        {"util", {"util"}},
        {"tensor", {"tensor", "util"}},
        {"trace", {"trace", "tensor", "util"}},
        {"runtime", {"runtime", "trace", "util"}},
        {"io", {"io", "runtime", "tensor", "trace", "util"}},
        {"ops", {"ops", "runtime", "tensor", "util"}},
        {"perf", {"perf", "trace", "tensor", "util"}},
        {"nn",
         {"nn", "io", "ops", "runtime", "tensor", "trace", "util"}},
        {"optim",
         {"optim", "io", "nn", "ops", "runtime", "tensor", "trace",
          "util"}},
        {"data",
         {"data", "io", "nn", "ops", "runtime", "tensor", "trace",
          "util"}},
        {"train",
         {"train", "data", "io", "nn", "ops", "optim", "runtime",
          "telemetry", "tensor", "trace", "util"}},
        // Telemetry (trace recorder + metrics) sits on the io and
        // runtime layers. The compute layers (ops/nn/optim) must
        // never include it — observability hooks flow through the
        // runtime profiler's sink, not direct dependencies, so the
        // substrate stays recordable without being recorder-aware.
        {"telemetry", {"telemetry", "io", "runtime", "trace", "util"}},
        // The graph executor sits above nn: it builds op lists out of
        // nn modules and interprets them over ops kernels. Nothing
        // below it (nn/ops/tensor/...) may include graph — nn reaches
        // it only through the nn/graph_hook.h seam.
        {"graph",
         {"graph", "nn", "ops", "runtime", "tensor", "trace", "util"}},
        {"dist", {"dist", "perf", "trace", "tensor", "util"}},
        {"nmc", {"nmc", "dist", "perf", "trace", "tensor", "util"}},
        // The serving runtime sits beside core at the top of the
        // model stack: it may use the model layers and the execution
        // runtime, but nothing may depend on it except bench/tests —
        // in particular core must stay serving-free, so embedding the
        // substrate never drags in the server.
        {"serve",
         {"serve", "graph", "nn", "io", "ops", "runtime", "telemetry",
          "tensor", "trace", "util"}},
        {"core",
         {"core", "data", "dist", "io", "nmc", "nn", "optim", "ops",
          "perf", "runtime", "telemetry", "tensor", "trace", "train",
          "util"}},
    };
    return m;
}

const std::set<std::string> &
layerExceptions()
{
    // KernelStats is the one shared vocabulary type the upper model
    // layers may pull from ops without owning a full ops dependency.
    static const std::set<std::string> exceptions = {
        "ops/kernel_stats.h"};
    return exceptions;
}

std::vector<std::string>
ruleNames()
{
    return {"wall-clock",         "libc-rand",
            "kernel-stats",       "op-entry-contract",
            "parallel-capture-race", "hot-loop-alloc",
            "must-check-io",      "env-registry",
            "include-hygiene",    "include-dag",
            "unchecked-io",       "arena-escape"};
}

std::vector<Finding>
lintProject(const std::vector<SourceFile> &files, const LintOptions &opts)
{
    ProjectModel pm = buildProjectModel(files);

    std::map<std::string, int> docKnobs;
    if (!opts.envDocText.empty())
        docKnobs = parseEnvDoc(opts.envDocText);

    std::vector<Finding> raw;
    for (const TuModel &tu : pm.tus) {
        checkForbiddenTokens(tu, raw);
        checkOpsKernels(tu, raw);
        checkUncheckedIo(tu, raw);
        checkIncludeHygiene(tu, raw);
        checkArenaEscape(tu, raw);
        checkParallelCaptureRace(pm, tu, raw);
        checkHotLoopAlloc(tu, raw);
        checkMustCheckIo(pm, tu, raw);
        if (!opts.envDocText.empty())
            checkEnvReads(tu, docKnobs, raw);
    }
    if (!opts.envDocText.empty())
        checkEnvDoc(pm, opts.envDocPath, docKnobs, raw);
    checkIncludeDag(pm, raw);

    // Suppressions apply per finding at the file it is reported in.
    std::map<std::string, const Suppressions *> suppByPath;
    for (const TuModel &tu : pm.tus)
        suppByPath[tu.path] = &tu.supp;

    std::vector<Finding> kept;
    for (auto &fd : raw) {
        const auto si = suppByPath.find(fd.file);
        if (si != suppByPath.end() &&
            si->second->allows(fd.rule, fd.line)) {
            continue;
        }
        kept.push_back(std::move(fd));
    }
    sortFindings(kept);
    return kept;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text)
{
    return lintProject({SourceFile{path, text}}, LintOptions{});
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &reportPath)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {{reportPath, 0, "io", "cannot read file"}};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(reportPath.empty() ? path : reportPath, ss.str());
}

std::string
stripCommentsAndStrings(const std::string &text)
{
    return buildTuModel("x.cc", text).stripped;
}

std::string
formatText(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    for (const auto &f : findings) {
        os << f.file << ':' << f.line << ": [" << f.rule << "] "
           << f.message << '\n';
    }
    return os.str();
}

std::string
formatJson(const std::vector<Finding> &findings)
{
    auto esc = [](const std::string &s) {
        std::string r;
        for (char c : s) {
            if (c == '"' || c == '\\')
                r += '\\';
            r += c;
        }
        return r;
    };
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const auto &f = findings[i];
        os << "  {\"file\": \"" << esc(f.file) << "\", \"line\": "
           << f.line << ", \"rule\": \"" << esc(f.rule)
           << "\", \"message\": \"" << esc(f.message) << "\"}"
           << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    os << "]\n";
    return os.str();
}

std::string
formatSarif(const std::vector<Finding> &findings)
{
    auto esc = [](const std::string &s) {
        std::string r;
        for (char c : s) {
            if (c == '"' || c == '\\')
                r += '\\';
            r += c;
        }
        return r;
    };
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"bplint\",\n"
       << "          \"informationUri\": "
          "\"tools/bplint\",\n"
       << "          \"rules\": [\n";
    const auto rules = ruleNames();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        os << "            {\"id\": \"" << rules[i] << "\"}"
           << (i + 1 < rules.size() ? "," : "") << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const auto &f = findings[i];
        os << "        {\n"
           << "          \"ruleId\": \"" << esc(f.rule) << "\",\n"
           << "          \"level\": \"error\",\n"
           << "          \"message\": {\"text\": \"" << esc(f.message)
           << "\"},\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": {\"uri\": \""
           << esc(f.file) << "\"},\n"
           << "                \"region\": {\"startLine\": "
           << std::max(1, f.line) << "}\n"
           << "              }\n"
           << "            }\n"
           << "          ]\n"
           << "        }" << (i + 1 < findings.size() ? "," : "")
           << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

std::string
baselineKey(const Finding &f)
{
    // Line numbers are deliberately excluded so a baseline survives
    // unrelated edits above a carried finding.
    return f.file + "|" + f.rule + "|" + f.message;
}

std::string
formatBaseline(const std::vector<Finding> &findings)
{
    std::vector<std::string> keys;
    keys.reserve(findings.size());
    for (const auto &f : findings)
        keys.push_back(baselineKey(f));
    std::sort(keys.begin(), keys.end());
    std::string out;
    for (const auto &k : keys)
        out += k + "\n";
    return out;
}

std::vector<Finding>
applyBaseline(const std::vector<Finding> &findings,
              const std::string &baselineText)
{
    std::multiset<std::string> baseline;
    std::istringstream is(baselineText);
    std::string ln;
    while (std::getline(is, ln)) {
        while (!ln.empty() && (ln.back() == '\r' || ln.back() == '\n'))
            ln.pop_back();
        if (!ln.empty())
            baseline.insert(ln);
    }
    std::vector<Finding> kept;
    for (const auto &f : findings) {
        const auto it = baseline.find(baselineKey(f));
        if (it != baseline.end()) {
            baseline.erase(it); // multiset: each entry excuses one hit
            continue;
        }
        kept.push_back(f);
    }
    return kept;
}

} // namespace bplint
