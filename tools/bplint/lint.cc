#include "lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace bplint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Line-level suppressions harvested from bplint directives. */
struct Suppressions {
    std::set<std::string> fileRules;
    // line -> rules allowed on that line and the one after it.
    std::map<int, std::set<std::string>> lineRules;

    bool
    allows(const std::string &rule, int line) const
    {
        if (fileRules.count(rule) || fileRules.count("*"))
            return true;
        for (int l : {line, line - 1}) {
            auto it = lineRules.find(l);
            if (it != lineRules.end() &&
                (it->second.count(rule) || it->second.count("*"))) {
                return true;
            }
        }
        return false;
    }
};

/** Result of the single strip pass over a file. */
struct StrippedFile {
    std::string text;  // comments/strings blanked, newlines kept
    Suppressions supp; // directives found in the comments
};

/** Parse "allow(rule)" / "allow-file(rule)" directives in a comment. */
void
harvestDirectives(const std::string &comment, int line, Suppressions &supp)
{
    std::size_t pos = 0;
    while ((pos = comment.find("bplint:", pos)) != std::string::npos) {
        pos += 7;
        while (pos < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[pos]))) {
            ++pos;
        }
        bool file_scope = false;
        if (comment.compare(pos, 11, "allow-file(") == 0) {
            file_scope = true;
            pos += 11;
        } else if (comment.compare(pos, 6, "allow(") == 0) {
            pos += 6;
        } else {
            continue;
        }
        const std::size_t close = comment.find(')', pos);
        if (close == std::string::npos)
            return;
        std::string rule = comment.substr(pos, close - pos);
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](char c) {
                                      return std::isspace(
                                          static_cast<unsigned char>(c));
                                  }),
                   rule.end());
        if (file_scope)
            supp.fileRules.insert(rule);
        else
            supp.lineRules[line].insert(rule);
        pos = close + 1;
    }
}

/** One pass: blank comments/strings, harvest suppression comments. */
StrippedFile
stripAndHarvest(const std::string &text)
{
    StrippedFile out;
    out.text.reserve(text.size());
    enum class St { Code, Line, Block, Str, Chr, Raw };
    St st = St::Code;
    int line = 1;
    std::string comment;
    int comment_line = 1;
    std::string raw_delim;

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                comment.clear();
                comment_line = line;
                out.text += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                comment.clear();
                comment_line = line;
                out.text += "  ";
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || !isIdentChar(text[i - 1]))) {
                // Raw string literal R"delim( ... )delim"
                std::size_t open = text.find('(', i + 2);
                if (open == std::string::npos) {
                    out.text += c;
                    break;
                }
                raw_delim = ")";
                raw_delim.append(text, i + 2, open - (i + 2));
                raw_delim += '"';
                out.text += "  ";
                out.text.append(open - (i + 2), ' ');
                i = open;
                out.text += ' ';
                st = St::Raw;
            } else if (c == '"') {
                st = St::Str;
                out.text += ' ';
            } else if (c == '\'') {
                st = St::Chr;
                out.text += ' ';
            } else {
                out.text += c;
            }
            break;
        case St::Line:
            if (c == '\n') {
                harvestDirectives(comment, comment_line, out.supp);
                st = St::Code;
                out.text += '\n';
            } else {
                comment += c;
                out.text += ' ';
            }
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                harvestDirectives(comment, comment_line, out.supp);
                st = St::Code;
                out.text += "  ";
                ++i;
            } else {
                comment += c;
                out.text += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Str:
            if (c == '\\' && n != '\0') {
                out.text += "  ";
                ++i;
            } else if (c == '"') {
                st = St::Code;
                out.text += ' ';
            } else {
                out.text += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Chr:
            if (c == '\\' && n != '\0') {
                out.text += "  ";
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                out.text += ' ';
            } else {
                out.text += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Raw:
            if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                out.text.append(raw_delim.size(), ' ');
                i += raw_delim.size() - 1;
                st = St::Code;
            } else {
                out.text += c == '\n' ? '\n' : ' ';
            }
            break;
        }
        if (c == '\n')
            ++line;
    }
    if (st == St::Line || st == St::Block)
        harvestDirectives(comment, comment_line, out.supp);
    return out;
}

/** 1-based line number of a character offset. */
int
lineOf(const std::string &text, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() +
                              static_cast<std::ptrdiff_t>(
                                  std::min(pos, text.size())), '\n'));
}

// ---------------------------------------------------------------------------
// Token rules: wall-clock, libc-rand
// ---------------------------------------------------------------------------

void
checkForbiddenTokens(const std::string &path, const std::string &s,
                     std::vector<Finding> &out)
{
    std::size_t i = 0;
    while (i < s.size()) {
        if (!isIdentChar(s[i]) ||
            std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            continue;
        }
        std::size_t b = i;
        while (i < s.size() && isIdentChar(s[i]))
            ++i;
        const std::string tok = s.substr(b, i - b);

        auto nextNonSpace = [&]() -> char {
            std::size_t j = i;
            while (j < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[j]))) {
                ++j;
            }
            return j < s.size() ? s[j] : '\0';
        };
        auto isMemberAccess = [&]() {
            std::size_t j = b;
            while (j > 0 &&
                   std::isspace(static_cast<unsigned char>(s[j - 1]))) {
                --j;
            }
            if (j == 0)
                return false;
            if (s[j - 1] == '.')
                return true;
            return j >= 2 && s[j - 2] == '-' && s[j - 1] == '>';
        };

        if (tok == "system_clock" || tok == "high_resolution_clock" ||
            tok == "gettimeofday") {
            out.push_back({path, lineOf(s, b), "wall-clock",
                           "'" + tok +
                               "' is wall-clock time; measured code must "
                               "use util/stopwatch.h (steady_clock)"});
        } else if (tok == "clock" && nextNonSpace() == '(' &&
                   !isMemberAccess()) {
            out.push_back({path, lineOf(s, b), "wall-clock",
                           "libc clock() is unsanctioned; use "
                           "util/stopwatch.h (steady_clock)"});
        } else if ((tok == "rand" || tok == "srand") &&
                   nextNonSpace() == '(' && !isMemberAccess()) {
            out.push_back({path, lineOf(s, b), "libc-rand",
                           "'" + tok +
                               "()' breaks seeded reproducibility; use "
                               "util/rng.h (Rng)"});
        }
    }
}

// ---------------------------------------------------------------------------
// Function extraction (namespace-scope definitions in a .cc)
// ---------------------------------------------------------------------------

struct Func {
    std::string name;
    std::string ret;
    std::string params;
    std::string body;
    int line = 0;
    bool anonOrStatic = false; // internal linkage: exempt from rules
};

struct Head {
    enum class Kind { Namespace, AnonNamespace, Function, Other };
    Kind kind = Kind::Other;
    std::string name, ret, params;
    bool isStatic = false;
};

std::vector<std::string>
identTokens(const std::string &s)
{
    std::vector<std::string> toks;
    std::size_t i = 0;
    while (i < s.size()) {
        if (isIdentChar(s[i]) &&
            !std::isdigit(static_cast<unsigned char>(s[i]))) {
            std::size_t b = i;
            while (i < s.size() && isIdentChar(s[i]))
                ++i;
            toks.push_back(s.substr(b, i - b));
        } else {
            ++i;
        }
    }
    return toks;
}

Head
classifyHead(const std::string &raw)
{
    Head h;
    std::string head = raw;
    // Drop preprocessor lines that may precede the definition.
    std::istringstream is(head);
    std::string cleaned, ln;
    while (std::getline(is, ln)) {
        std::size_t f = ln.find_first_not_of(" \t");
        if (f != std::string::npos && ln[f] == '#')
            continue;
        cleaned += ln + "\n";
    }
    head = cleaned;

    const auto toks = identTokens(head);
    if (toks.empty())
        return h;
    if (toks.front() == "namespace") {
        h.kind = toks.size() == 1 ? Head::Kind::AnonNamespace
                                  : Head::Kind::Namespace;
        return h;
    }
    static const std::set<std::string> control = {
        "if", "for", "while", "switch", "catch", "do", "else", "return"};
    static const std::set<std::string> aggregate = {"class", "struct",
                                                    "enum", "union"};
    for (const auto &t : toks) {
        if (control.count(t))
            return h;
    }
    if (aggregate.count(toks.front()) ||
        (toks.front() == "typedef" || toks.front() == "using")) {
        return h;
    }
    // '=' at paren depth 0 → initializer / lambda assignment.
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
        if (head[i] == '(')
            ++depth;
        else if (head[i] == ')')
            --depth;
        else if (head[i] == '=' && depth == 0 &&
                 (i + 1 >= head.size() || head[i + 1] != '=')) {
            return h;
        }
    }
    const std::size_t close = head.rfind(')');
    if (close == std::string::npos)
        return h;
    // Only cv/ref/noexcept qualifiers may follow the parameter list.
    static const std::set<std::string> quals = {"const", "noexcept",
                                               "override", "final"};
    for (const auto &t : identTokens(head.substr(close + 1))) {
        if (!quals.count(t))
            return h;
    }
    // Match the '(' that opens the parameter list.
    int bal = 0;
    std::size_t open = std::string::npos;
    for (std::size_t i = close + 1; i-- > 0;) {
        if (head[i] == ')')
            ++bal;
        else if (head[i] == '(' && --bal == 0) {
            open = i;
            break;
        }
    }
    if (open == std::string::npos)
        return h;
    std::size_t e = open;
    while (e > 0 && std::isspace(static_cast<unsigned char>(head[e - 1])))
        --e;
    std::size_t b = e;
    while (b > 0 && (isIdentChar(head[b - 1]) || head[b - 1] == ':'))
        --b;
    if (b == e)
        return h;
    h.kind = Head::Kind::Function;
    h.name = head.substr(b, e - b);
    h.ret = head.substr(0, b);
    h.params = head.substr(open + 1, close - open - 1);
    for (const auto &t : identTokens(h.ret)) {
        if (t == "static")
            h.isStatic = true;
    }
    return h;
}

std::vector<Func>
parseFunctions(const std::string &s)
{
    std::vector<Func> funcs;
    std::vector<Head::Kind> scopes;
    std::size_t stmt_start = 0;
    int anon_depth = 0;

    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == ';') {
            // A ';' ends a statement at namespace scope too (e.g. a
            // constexpr or extern declaration before a definition);
            // without the reset the next head would absorb it and
            // misclassify, silently skipping the following function.
            const bool ns_scope = std::all_of(
                scopes.begin(), scopes.end(), [](Head::Kind k) {
                    return k == Head::Kind::Namespace ||
                           k == Head::Kind::AnonNamespace;
                });
            if (ns_scope)
                stmt_start = i + 1;
            continue;
        }
        if (c == '}') {
            if (!scopes.empty()) {
                if (scopes.back() == Head::Kind::AnonNamespace)
                    --anon_depth;
                scopes.pop_back();
            }
            if (scopes.empty() ||
                scopes.back() == Head::Kind::Namespace ||
                scopes.back() == Head::Kind::AnonNamespace) {
                stmt_start = i + 1;
            }
            continue;
        }
        if (c != '{')
            continue;

        const bool at_ns_scope = std::all_of(
            scopes.begin(), scopes.end(), [](Head::Kind k) {
                return k == Head::Kind::Namespace ||
                       k == Head::Kind::AnonNamespace;
            });
        Head h;
        if (at_ns_scope)
            h = classifyHead(s.substr(stmt_start, i - stmt_start));

        if (at_ns_scope && h.kind == Head::Kind::Function) {
            // Capture the body by brace matching.
            int depth = 1;
            std::size_t j = i + 1;
            for (; j < s.size() && depth > 0; ++j) {
                if (s[j] == '{')
                    ++depth;
                else if (s[j] == '}')
                    --depth;
            }
            Func f;
            f.name = h.name;
            f.ret = h.ret;
            f.params = h.params;
            f.body = s.substr(i + 1, j - i - 2);
            f.line = lineOf(s, stmt_start +
                                   s.substr(stmt_start, i - stmt_start)
                                       .find_first_not_of(" \t\n"));
            f.anonOrStatic = anon_depth > 0 || h.isStatic;
            funcs.push_back(std::move(f));
            i = j - 1;
            stmt_start = j;
            continue;
        }
        if (at_ns_scope && h.kind == Head::Kind::AnonNamespace)
            ++anon_depth;
        scopes.push_back(h.kind);
        stmt_start = i + 1;
    }
    return funcs;
}

// ---------------------------------------------------------------------------
// Rules: kernel-stats, op-entry-contract (src/ops/*.cc only)
// ---------------------------------------------------------------------------

bool
hasToken(const std::string &s, const std::string &tok)
{
    std::size_t pos = 0;
    while ((pos = s.find(tok, pos)) != std::string::npos) {
        const bool lb = pos == 0 || !isIdentChar(s[pos - 1]);
        const bool rb = pos + tok.size() >= s.size() ||
                        !isIdentChar(s[pos + tok.size()]);
        if (lb && rb)
            return true;
        pos += tok.size();
    }
    return false;
}

void
checkOpsKernels(const std::string &path, const std::string &s,
                std::vector<Finding> &out)
{
    for (const Func &f : parseFunctions(s)) {
        if (f.anonOrStatic || !hasToken(f.params, "Tensor"))
            continue;
        const bool reports = hasToken(f.ret, "KernelStats") ||
                             f.ret.find("Result") != std::string::npos;
        if (!reports) {
            out.push_back(
                {path, f.line, "kernel-stats",
                 "kernel entry '" + f.name +
                     "' takes Tensors but does not return KernelStats "
                     "(or a *Result carrying stats); the perf model's "
                     "operator accounting depends on it"});
        }
        if (!hasToken(f.body, "BP_REQUIRE") &&
            f.body.find("BP_CHECK_") == std::string::npos) {
            out.push_back(
                {path, f.line, "op-entry-contract",
                 "kernel entry '" + f.name +
                     "' has no BP_REQUIRE/BP_CHECK_* precondition; "
                     "every public op must validate shapes/aliasing "
                     "before computing"});
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: parallel-shared-accum
// ---------------------------------------------------------------------------

/** Identifiers declared inside a lambda body (approximate). */
std::set<std::string>
localDecls(const std::string &body)
{
    static const std::set<std::string> types = {
        "double", "float",   "auto", "bool",  "int",   "unsigned",
        "signed", "long",    "short", "char", "size_t", "int64_t",
        "int32_t", "Tensor", "Shape", "std"};
    std::set<std::string> locals;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= body.size(); ++i) {
        const char c = i < body.size() ? body[i] : ';';
        if (c != ';' && c != '{' && c != '}' && c != '(' && c != ')')
            continue;
        const auto toks = identTokens(body.substr(start, i - start));
        start = i + 1;
        if (toks.empty())
            continue;
        std::size_t t = 0;
        if (toks[t] == "const")
            ++t;
        if (t >= toks.size() || !types.count(toks[t]))
            continue;
        // Skip the type tokens (handles std::int64_t, unsigned long...).
        while (t < toks.size() && types.count(toks[t]))
            ++t;
        if (t < toks.size())
            locals.insert(toks[t]);
    }
    return locals;
}

void
checkParallelBodies(const std::string &path, const std::string &s,
                    std::vector<Finding> &out)
{
    std::size_t pos = 0;
    while ((pos = s.find("parallelFor", pos)) != std::string::npos) {
        if (pos > 0 && isIdentChar(s[pos - 1])) {
            pos += 11;
            continue;
        }
        // Find the lambda argument: first '[' after the call opens.
        const std::size_t lb = s.find('[', pos);
        pos += 11;
        if (lb == std::string::npos)
            continue;
        const std::size_t lparen = s.find('(', lb);
        if (lparen == std::string::npos)
            continue;
        std::size_t bodyStart = s.find('{', lparen);
        if (bodyStart == std::string::npos)
            continue;
        int depth = 1;
        std::size_t j = bodyStart + 1;
        for (; j < s.size() && depth > 0; ++j) {
            if (s[j] == '{')
                ++depth;
            else if (s[j] == '}')
                --depth;
        }
        const std::string body =
            s.substr(bodyStart + 1, j - bodyStart - 2);
        std::set<std::string> locals = localDecls(body);
        for (const auto &p :
             identTokens(s.substr(lparen, bodyStart - lparen))) {
            locals.insert(p);
        }

        static const char *kOps[] = {"+=", "-=", "*=", "/="};
        for (const char *op : kOps) {
            std::size_t o = 0;
            while ((o = body.find(op, o)) != std::string::npos) {
                const std::size_t at = o;
                o += 2;
                // Skip matches inside larger operators (<<=, >>=).
                if (at > 0 && (body[at - 1] == '<' || body[at - 1] == '>'))
                    continue;
                std::size_t e = at;
                while (e > 0 && std::isspace(
                                    static_cast<unsigned char>(body[e - 1])))
                    --e;
                if (e == 0)
                    continue;
                // Subscripted / dereferenced destinations write
                // disjoint elements — not a shared accumulator.
                if (body[e - 1] == ']' || body[e - 1] == ')')
                    continue;
                std::size_t b = e;
                while (b > 0 && isIdentChar(body[b - 1]))
                    --b;
                if (b == e)
                    continue;
                const std::string ident = body.substr(b, e - b);
                if (locals.count(ident))
                    continue;
                out.push_back(
                    {path, lineOf(s, bodyStart + 1 + at),
                     "parallel-shared-accum",
                     "'" + ident + " " + op +
                         " ...' inside a parallelFor body accumulates "
                         "into captured state; use "
                         "parallelReduceOrdered for deterministic "
                         "reductions"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-io
// ---------------------------------------------------------------------------

void
checkUncheckedIo(const std::string &path, const std::string &s,
                 std::vector<Finding> &out)
{
    // Raw file I/O outside src/io/ bypasses the crash-safe write
    // protocol (temp + fsync + atomic rename), the typed IoStatus
    // errors, and the io.* fault-injection sites. The io layer is
    // the one place allowed to touch stdio/fstream directly.
    const std::size_t sp = path.rfind("src/");
    if (sp == std::string::npos)
        return;
    if (path.compare(sp, 7, "src/io/") == 0)
        return;
    static const std::set<std::string> primitives = {
        "fopen", "fwrite", "fread", "ofstream", "fstream"};
    std::size_t i = 0;
    while (i < s.size()) {
        if (!isIdentChar(s[i]) ||
            std::isdigit(static_cast<unsigned char>(s[i]))) {
            ++i;
            continue;
        }
        std::size_t b = i;
        while (i < s.size() && isIdentChar(s[i]))
            ++i;
        const std::string tok = s.substr(b, i - b);
        if (!primitives.count(tok))
            continue;
        out.push_back(
            {path, lineOf(s, b), "unchecked-io",
             "'" + tok +
                 "' outside src/io/ bypasses the crash-safe, "
                 "checked I/O layer; route file writes through "
                 "io/binary_io.h (writeFileAtomic / writeTextFile)"});
    }
}

// ---------------------------------------------------------------------------
// Rule: include-hygiene
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>> &
layerMap()
{
    static const std::map<std::string, std::set<std::string>> m = {
        {"util", {"util"}},
        {"tensor", {"tensor", "util"}},
        {"trace", {"trace", "tensor", "util"}},
        {"runtime", {"runtime", "trace", "util"}},
        {"io", {"io", "runtime", "tensor", "trace", "util"}},
        {"ops", {"ops", "runtime", "tensor", "util"}},
        {"perf", {"perf", "trace", "tensor", "util"}},
        {"nn",
         {"nn", "io", "ops", "runtime", "tensor", "trace", "util"}},
        {"optim",
         {"optim", "io", "nn", "ops", "runtime", "tensor", "trace",
          "util"}},
        {"data",
         {"data", "io", "nn", "ops", "runtime", "tensor", "trace",
          "util"}},
        {"train",
         {"train", "data", "io", "nn", "ops", "optim", "runtime",
          "telemetry", "tensor", "trace", "util"}},
        // Telemetry (trace recorder + metrics) sits on the io and
        // runtime layers. The compute layers (ops/nn/optim) must
        // never include it — observability hooks flow through the
        // runtime profiler's sink, not direct dependencies, so the
        // substrate stays recordable without being recorder-aware.
        {"telemetry", {"telemetry", "io", "runtime", "trace", "util"}},
        // The graph executor sits above nn: it builds op lists out of
        // nn modules and interprets them over ops kernels. Nothing
        // below it (nn/ops/tensor/...) may include graph — nn reaches
        // it only through the nn/graph_hook.h seam.
        {"graph",
         {"graph", "nn", "ops", "runtime", "tensor", "trace", "util"}},
        {"dist", {"dist", "perf", "trace", "tensor", "util"}},
        {"nmc", {"nmc", "dist", "perf", "trace", "tensor", "util"}},
        // The serving runtime sits beside core at the top of the
        // model stack: it may use the model layers and the execution
        // runtime, but nothing may depend on it except bench/tests —
        // in particular core must stay serving-free, so embedding the
        // substrate never drags in the server.
        {"serve",
         {"serve", "graph", "nn", "io", "ops", "runtime", "telemetry",
          "tensor", "trace", "util"}},
        {"core",
         {"core", "data", "dist", "io", "nmc", "nn", "optim", "ops",
          "perf", "runtime", "telemetry", "tensor", "trace", "train",
          "util"}},
    };
    return m;
}

void
checkIncludeHygiene(const std::string &path, const std::string &original,
                    std::vector<Finding> &out)
{
    const std::size_t sp = path.rfind("src/");
    if (sp == std::string::npos)
        return; // hygiene applies to the library tree only
    const std::string rel = path.substr(sp + 4);
    const std::size_t slash = rel.find('/');
    if (slash == std::string::npos)
        return;
    const std::string layer = rel.substr(0, slash);
    const auto it = layerMap().find(layer);
    if (it == layerMap().end())
        return;
    // KernelStats is the one shared vocabulary type the upper model
    // layers may pull from ops without owning a full ops dependency.
    static const std::set<std::string> exceptions = {
        "ops/kernel_stats.h"};

    std::istringstream is(original);
    std::string ln;
    int line = 0;
    while (std::getline(is, ln)) {
        ++line;
        std::size_t h = ln.find_first_not_of(" \t");
        if (h == std::string::npos || ln[h] != '#')
            continue;
        const std::size_t inc = ln.find("include", h);
        if (inc == std::string::npos)
            continue;
        const std::size_t q1 = ln.find('"', inc);
        if (q1 == std::string::npos)
            continue;
        const std::size_t q2 = ln.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        const std::string target = ln.substr(q1 + 1, q2 - q1 - 1);
        const std::size_t tslash = target.find('/');
        if (tslash == std::string::npos)
            continue; // same-directory include
        const std::string tlayer = target.substr(0, tslash);
        if (!layerMap().count(tlayer))
            continue; // not a layer-qualified include
        if (it->second.count(tlayer) || exceptions.count(target))
            continue;
        out.push_back(
            {path, line, "include-hygiene",
             "src/" + layer + " must not include \"" + target +
                 "\": layer '" + tlayer +
                 "' is not below it in the dependency DAG (route "
                 "shared functionality through a lower layer or "
                 "src/core)"});
    }
}

// ---------------------------------------------------------------------------
// Rule: arena-escape
// ---------------------------------------------------------------------------

// Tensor::borrow wraps raw arena storage in a non-owning view whose
// lifetime is bounded by the executor's plan. Only the graph layer
// (which owns the arena) and the tensor layer (which defines the
// type) may mint such views; anywhere else a borrowed view could
// outlive its backing buffer.
void
checkArenaEscape(const std::string &path, const std::string &s,
                 std::vector<Finding> &out)
{
    const std::size_t sp = path.rfind("src/");
    if (sp == std::string::npos)
        return;
    const std::string rel = path.substr(sp + 4);
    if (rel.rfind("graph/", 0) == 0 || rel.rfind("tensor/", 0) == 0)
        return;
    std::size_t pos = 0;
    while ((pos = s.find("Tensor::borrow", pos)) != std::string::npos) {
        out.push_back(
            {path, lineOf(s, pos), "arena-escape",
             "Tensor::borrow outside src/graph creates a non-owning "
             "view that can outlive its arena; only the graph "
             "executor may bind borrowed storage"});
        pos += 14;
    }
}

} // namespace

std::vector<std::string>
ruleNames()
{
    return {"wall-clock",        "libc-rand",
            "kernel-stats",      "op-entry-contract",
            "parallel-shared-accum", "include-hygiene",
            "unchecked-io",      "arena-escape"};
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text)
{
    const StrippedFile f = stripAndHarvest(text);
    std::vector<Finding> raw;

    checkForbiddenTokens(path, f.text, raw);
    checkParallelBodies(path, f.text, raw);
    checkUncheckedIo(path, f.text, raw);
    checkIncludeHygiene(path, text, raw);
    checkArenaEscape(path, f.text, raw);
    if (path.find("src/ops/") != std::string::npos &&
        path.size() > 3 && path.compare(path.size() - 3, 3, ".cc") == 0) {
        checkOpsKernels(path, f.text, raw);
    }

    std::vector<Finding> kept;
    for (auto &fd : raw) {
        if (!f.supp.allows(fd.rule, fd.line))
            kept.push_back(std::move(fd));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return kept;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &reportPath)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {{reportPath, 0, "io", "cannot read file"}};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(reportPath.empty() ? path : reportPath, ss.str());
}

std::string
stripCommentsAndStrings(const std::string &text)
{
    return stripAndHarvest(text).text;
}

std::string
formatText(const std::vector<Finding> &findings)
{
    std::ostringstream os;
    for (const auto &f : findings) {
        os << f.file << ':' << f.line << ": [" << f.rule << "] "
           << f.message << '\n';
    }
    return os.str();
}

std::string
formatJson(const std::vector<Finding> &findings)
{
    auto esc = [](const std::string &s) {
        std::string r;
        for (char c : s) {
            if (c == '"' || c == '\\')
                r += '\\';
            r += c;
        }
        return r;
    };
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const auto &f = findings[i];
        os << "  {\"file\": \"" << esc(f.file) << "\", \"line\": "
           << f.line << ", \"rule\": \"" << esc(f.rule)
           << "\", \"message\": \"" << esc(f.message) << "\"}"
           << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    os << "]\n";
    return os.str();
}

} // namespace bplint
