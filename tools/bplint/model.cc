#include "model.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <sstream>

namespace bplint {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int
lineOf(const std::string &text, std::size_t pos)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(),
                              text.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(pos, text.size())),
                              '\n'));
}

std::vector<std::string>
identTokens(const std::string &s)
{
    std::vector<std::string> toks;
    std::size_t i = 0;
    while (i < s.size()) {
        if (isIdentChar(s[i]) &&
            !std::isdigit(static_cast<unsigned char>(s[i]))) {
            std::size_t b = i;
            while (i < s.size() && isIdentChar(s[i]))
                ++i;
            toks.push_back(s.substr(b, i - b));
        } else {
            ++i;
        }
    }
    return toks;
}

bool
hasToken(const std::string &s, const std::string &tok)
{
    std::size_t pos = 0;
    while ((pos = s.find(tok, pos)) != std::string::npos) {
        const bool lb = pos == 0 || !isIdentChar(s[pos - 1]);
        const bool rb = pos + tok.size() >= s.size() ||
                        !isIdentChar(s[pos + tok.size()]);
        if (lb && rb)
            return true;
        pos += tok.size();
    }
    return false;
}

bool
Suppressions::allows(const std::string &rule, int line) const
{
    if (fileRules.count(rule) || fileRules.count("*"))
        return true;
    for (int l : {line, line - 1}) {
        auto it = lineRules.find(l);
        if (it != lineRules.end() &&
            (it->second.count(rule) || it->second.count("*"))) {
            return true;
        }
    }
    return false;
}

namespace {

/** Parse "allow(rule)" / "allow-file(rule)" directives in a comment. */
void
harvestDirectives(const std::string &comment, int line, Suppressions &supp)
{
    std::size_t pos = 0;
    while ((pos = comment.find("bplint:", pos)) != std::string::npos) {
        pos += 7;
        while (pos < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[pos]))) {
            ++pos;
        }
        bool file_scope = false;
        if (comment.compare(pos, 11, "allow-file(") == 0) {
            file_scope = true;
            pos += 11;
        } else if (comment.compare(pos, 6, "allow(") == 0) {
            pos += 6;
        } else {
            continue;
        }
        const std::size_t close = comment.find(')', pos);
        if (close == std::string::npos)
            return;
        std::string rule = comment.substr(pos, close - pos);
        rule.erase(std::remove_if(rule.begin(), rule.end(),
                                  [](char c) {
                                      return std::isspace(
                                          static_cast<unsigned char>(c));
                                  }),
                   rule.end());
        if (file_scope)
            supp.fileRules.insert(rule);
        else
            supp.lineRules[line].insert(rule);
        pos = close + 1;
    }
}

struct StrippedFile {
    std::string text;
    Suppressions supp;
    std::vector<StringLit> strings;
};

/** One pass: blank comments/strings, harvest directives + literals. */
StrippedFile
stripAndHarvest(const std::string &text)
{
    StrippedFile out;
    out.text.reserve(text.size());
    enum class St { Code, Line, Block, Str, Chr, Raw };
    St st = St::Code;
    int line = 1;
    std::string comment;
    int comment_line = 1;
    std::string raw_delim;
    std::string lit;
    std::size_t lit_pos = 0;

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                comment.clear();
                comment_line = line;
                out.text += "  ";
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                comment.clear();
                comment_line = line;
                out.text += "  ";
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || !isIdentChar(text[i - 1]))) {
                // Raw string literal R"delim( ... )delim"
                std::size_t open = text.find('(', i + 2);
                if (open == std::string::npos) {
                    out.text += c;
                    break;
                }
                raw_delim.assign(1, ')');
                raw_delim.append(text, i + 2, open - (i + 2));
                raw_delim += '"';
                out.text += "  ";
                out.text.append(open - (i + 2), ' ');
                i = open;
                out.text += ' ';
                st = St::Raw;
                lit.clear();
                lit_pos = i;
            } else if (c == '"') {
                st = St::Str;
                out.text += ' ';
                lit.clear();
                lit_pos = i;
            } else if (c == '\'') {
                st = St::Chr;
                out.text += ' ';
            } else {
                out.text += c;
            }
            break;
        case St::Line:
            if (c == '\n') {
                harvestDirectives(comment, comment_line, out.supp);
                st = St::Code;
                out.text += '\n';
            } else {
                comment += c;
                out.text += ' ';
            }
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                harvestDirectives(comment, comment_line, out.supp);
                st = St::Code;
                out.text += "  ";
                ++i;
            } else {
                comment += c;
                out.text += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Str:
            if (c == '\\' && n != '\0') {
                out.text += "  ";
                lit += c;
                lit += n;
                ++i;
            } else if (c == '"') {
                st = St::Code;
                out.text += ' ';
                out.strings.push_back({lit_pos, lit});
            } else {
                out.text += c == '\n' ? '\n' : ' ';
                lit += c;
            }
            break;
        case St::Chr:
            if (c == '\\' && n != '\0') {
                out.text += "  ";
                ++i;
            } else if (c == '\'') {
                st = St::Code;
                out.text += ' ';
            } else {
                out.text += c == '\n' ? '\n' : ' ';
            }
            break;
        case St::Raw:
            if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                out.text.append(raw_delim.size(), ' ');
                i += raw_delim.size() - 1;
                st = St::Code;
                out.strings.push_back({lit_pos, lit});
            } else {
                out.text += c == '\n' ? '\n' : ' ';
                lit += c;
            }
            break;
        }
        if (c == '\n')
            ++line;
    }
    if (st == St::Line || st == St::Block)
        harvestDirectives(comment, comment_line, out.supp);
    return out;
}

/** Offset one past the '}' matching the '{' at `open`. */
std::size_t
matchBrace(const std::string &s, std::size_t open)
{
    int depth = 1;
    std::size_t j = open + 1;
    for (; j < s.size() && depth > 0; ++j) {
        if (s[j] == '{')
            ++depth;
        else if (s[j] == '}')
            --depth;
    }
    return j;
}

/** Offset of the char matching `openCh` at `open` (e.g. parens). */
std::size_t
matchPair(const std::string &s, std::size_t open, char openCh, char closeCh)
{
    int depth = 1;
    std::size_t j = open + 1;
    for (; j < s.size(); ++j) {
        if (s[j] == openCh)
            ++depth;
        else if (s[j] == closeCh && --depth == 0)
            return j;
    }
    return std::string::npos;
}

std::size_t
skipWs(const std::string &s, std::size_t i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i]))) {
        ++i;
    }
    return i;
}

// ---------------------------------------------------------------------
// Head classification (what precedes a '{' or a decl ';')
// ---------------------------------------------------------------------

struct Head {
    enum class Kind { Namespace, AnonNamespace, Function, Class, Other };
    Kind kind = Kind::Other;
    std::string name, ret, params, className;
    bool isStatic = false;
    bool isConst = false;
};

const std::set<std::string> &
typeQualifiers()
{
    static const std::set<std::string> q = {
        "public",   "private",   "protected", "const",   "static",
        "mutable",  "constexpr", "inline",    "virtual", "volatile",
        "thread_local", "std",   "unsigned",  "signed",  "explicit",
        "friend",   "typename",  "template",  "struct",  "class",
        "enum",     "nodiscard", "maybe_unused", "extern"};
    return q;
}

Head
classifyHead(const std::string &raw)
{
    Head h;
    std::string head = raw;
    // Drop preprocessor lines that may precede the definition.
    std::istringstream is(head);
    std::string cleaned, ln;
    while (std::getline(is, ln)) {
        std::size_t f = ln.find_first_not_of(" \t");
        if (f != std::string::npos && ln[f] == '#')
            continue;
        cleaned += ln + "\n";
    }
    head = cleaned;

    const auto toks = identTokens(head);
    if (toks.empty())
        return h;
    if (toks.front() == "namespace") {
        h.kind = toks.size() == 1 ? Head::Kind::AnonNamespace
                                  : Head::Kind::Namespace;
        return h;
    }
    static const std::set<std::string> control = {
        "if", "for", "while", "switch", "catch", "do", "else", "return"};
    static const std::set<std::string> aggregate = {"class", "struct",
                                                    "union"};
    for (const auto &t : toks) {
        if (control.count(t))
            return h;
    }
    // class/struct head: name follows the last class/struct keyword.
    for (std::size_t t = toks.size(); t-- > 0;) {
        if (aggregate.count(toks[t])) {
            if (t + 1 < toks.size()) {
                h.kind = Head::Kind::Class;
                h.className = toks[t + 1];
            }
            return h;
        }
    }
    if (toks.front() == "enum" || toks.front() == "typedef" ||
        toks.front() == "using") {
        return h;
    }
    // '=' at paren depth 0 → initializer / lambda assignment.
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
        if (head[i] == '(')
            ++depth;
        else if (head[i] == ')')
            --depth;
        else if (head[i] == '=' && depth == 0 &&
                 (i + 1 >= head.size() || head[i + 1] != '=')) {
            return h;
        }
    }
    const std::size_t close = head.rfind(')');
    if (close == std::string::npos)
        return h;
    // Only cv/ref/noexcept qualifiers may follow the parameter list.
    static const std::set<std::string> quals = {"const", "noexcept",
                                                "override", "final"};
    for (const auto &t : identTokens(head.substr(close + 1))) {
        if (!quals.count(t))
            return h;
        if (t == "const")
            h.isConst = true;
    }
    // Match the '(' that opens the parameter list.
    int bal = 0;
    std::size_t open = std::string::npos;
    for (std::size_t i = close + 1; i-- > 0;) {
        if (head[i] == ')')
            ++bal;
        else if (head[i] == '(' && --bal == 0) {
            open = i;
            break;
        }
    }
    if (open == std::string::npos)
        return h;
    std::size_t e = open;
    while (e > 0 && std::isspace(static_cast<unsigned char>(head[e - 1])))
        --e;
    std::size_t b = e;
    while (b > 0 && (isIdentChar(head[b - 1]) || head[b - 1] == ':' ||
                     head[b - 1] == '~')) {
        --b;
    }
    if (b == e)
        return h;
    h.kind = Head::Kind::Function;
    h.name = head.substr(b, e - b);
    h.ret = head.substr(0, b);
    h.params = head.substr(open + 1, close - open - 1);
    for (const auto &t : identTokens(h.ret)) {
        if (t == "static")
            h.isStatic = true;
    }
    return h;
}

/** First return-type token that is not a qualifier ("" if none). */
std::string
firstTypeToken(const std::string &ret)
{
    for (const auto &t : identTokens(ret)) {
        if (!typeQualifiers().count(t))
            return t;
    }
    return "";
}

/** Record a method/function declaration head into a fact table. */
void
recordFnFact(const Head &h, std::map<std::string, MethodFact> &table)
{
    if (h.name.empty() || h.name.find("operator") != std::string::npos)
        return;
    MethodFact mf;
    mf.retType = firstTypeToken(h.ret);
    mf.isConst = h.isConst;
    mf.returnsIoStatus = hasToken(h.ret, "IoStatus");
    mf.params = h.params;
    auto it = table.find(h.name);
    // A declaration seen first wins; definitions only fill gaps.
    if (it == table.end())
        table[h.name] = mf;
}

/** Harvest one class-scope statement (no braces) as a member fact. */
void
harvestClassMember(const std::string &stmtRaw, const std::string &className,
                   ClassFact &cf)
{
    // Truncate at a default-member-initializer '=' (depth 0).
    std::string stmt = stmtRaw;
    int depth = 0;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
        if (stmt[i] == '(' || stmt[i] == '<')
            ++depth;
        else if (stmt[i] == ')' || stmt[i] == '>')
            --depth;
        else if (stmt[i] == '=' && depth <= 0 &&
                 (i + 1 >= stmt.size() || stmt[i + 1] != '=') &&
                 (i == 0 || (stmt[i - 1] != '=' && stmt[i - 1] != '!' &&
                             stmt[i - 1] != '<' && stmt[i - 1] != '>'))) {
            stmt = stmt.substr(0, i);
            break;
        }
    }
    const auto toks = identTokens(stmt);
    if (toks.empty() || toks.front() == "using" ||
        toks.front() == "typedef" || toks.front() == "friend") {
        return;
    }
    // Method declaration? Mirrors classifyHead's parameter-list scan.
    const Head h = classifyHead(stmt + "\n");
    if (h.kind == Head::Kind::Function) {
        std::string bare = h.name;
        const std::size_t q = bare.rfind("::");
        if (q != std::string::npos)
            bare = bare.substr(q + 2);
        if (bare != className && !bare.empty() && bare[0] != '~')
            recordFnFact(Head{h.kind, bare, h.ret, h.params, "",
                              h.isStatic, h.isConst},
                         cf.methods);
        return;
    }
    // Member variable: last ident is the name, first non-qualifier
    // ident is the type. Skip statements with parens (fn pointers,
    // std::function members) — their "type" would be garbage.
    if (stmt.find('(') != std::string::npos)
        return;
    std::string type;
    for (const auto &t : toks) {
        if (!typeQualifiers().count(t)) {
            type = t;
            break;
        }
    }
    if (type.empty() || toks.size() < 2)
        return;
    const std::string name = toks.back();
    if (name == type)
        return;
    cf.memberTypes.emplace(name, type);
}

/**
 * Single declaration-scanner pass over the stripped text: harvests
 * namespace-scope function definitions (FuncFacts), class facts
 * (methods + member types, including inline definitions), and
 * namespace-scope function declarations.
 */
void
scanDeclarations(const std::string &s, TuModel &tu)
{
    struct Ent {
        Head::Kind kind;
        std::string className;
    };
    std::vector<Ent> scopes;
    std::size_t stmt_start = 0;
    int anon_depth = 0;

    auto atNsScope = [&]() {
        return std::all_of(scopes.begin(), scopes.end(), [](const Ent &e) {
            return e.kind == Head::Kind::Namespace ||
                   e.kind == Head::Kind::AnonNamespace;
        });
    };
    auto inClass = [&]() {
        return !scopes.empty() && scopes.back().kind == Head::Kind::Class;
    };

    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == ';') {
            const std::string stmt = s.substr(stmt_start, i - stmt_start);
            if (atNsScope()) {
                // Namespace-scope declaration: harvest call/result
                // facts for prototypes (headers mostly).
                const Head h = classifyHead(stmt + "\n");
                if (h.kind == Head::Kind::Function &&
                    h.name.find("::") == std::string::npos) {
                    recordFnFact(h, tu.freeFns);
                }
                stmt_start = i + 1;
            } else if (inClass()) {
                harvestClassMember(stmt, scopes.back().className,
                                   tu.classes[scopes.back().className]);
                stmt_start = i + 1;
            }
            continue;
        }
        if (c == '}') {
            if (!scopes.empty()) {
                if (scopes.back().kind == Head::Kind::AnonNamespace)
                    --anon_depth;
                scopes.pop_back();
            }
            stmt_start = i + 1;
            continue;
        }
        if (c != '{')
            continue;

        const std::string headText = s.substr(stmt_start, i - stmt_start);
        if (atNsScope()) {
            const Head h = classifyHead(headText);
            if (h.kind == Head::Kind::Function) {
                const std::size_t bodyEnd = matchBrace(s, i);
                FuncFact f;
                f.name = h.name;
                const std::size_t q = h.name.rfind("::");
                if (q != std::string::npos) {
                    f.className = h.name.substr(0, q);
                    const std::size_t q2 = f.className.rfind("::");
                    if (q2 != std::string::npos)
                        f.className = f.className.substr(q2 + 2);
                    f.bareName = h.name.substr(q + 2);
                } else {
                    f.bareName = h.name;
                }
                f.ret = h.ret;
                f.params = h.params;
                f.bodyBegin = i + 1;
                f.bodyEnd = bodyEnd > i + 1 ? bodyEnd - 1 : i + 1;
                const std::size_t first =
                    headText.find_first_not_of(" \t\n");
                f.line = lineOf(
                    s, stmt_start + (first == std::string::npos ? 0 : first));
                f.anonOrStatic = anon_depth > 0 || h.isStatic;
                // Definitions feed the cross-TU fact tables too.
                if (!f.bareName.empty() && f.bareName[0] != '~') {
                    Head fact{Head::Kind::Function, f.bareName, f.ret,
                              f.params, "", h.isStatic, h.isConst};
                    if (f.className.empty())
                        recordFnFact(fact, tu.freeFns);
                    else if (f.bareName != f.className)
                        recordFnFact(fact,
                                     tu.classes[f.className].methods);
                }
                tu.funcs.push_back(std::move(f));
                i = bodyEnd > 0 ? bodyEnd - 1 : i;
                stmt_start = i + 1;
                continue;
            }
            if (h.kind == Head::Kind::Class) {
                scopes.push_back({h.kind, h.className});
                (void)tu.classes[h.className];
                stmt_start = i + 1;
                continue;
            }
            if (h.kind == Head::Kind::AnonNamespace)
                ++anon_depth;
            scopes.push_back({h.kind, ""});
            stmt_start = i + 1;
            continue;
        }
        if (inClass()) {
            const Head h = classifyHead(headText);
            if (h.kind == Head::Kind::Class) {
                scopes.push_back({h.kind, h.className});
                (void)tu.classes[h.className];
                stmt_start = i + 1;
                continue;
            }
            if (h.kind == Head::Kind::Function) {
                // Inline method definition: record, skip the body.
                std::string bare = h.name;
                const std::size_t q = bare.rfind("::");
                if (q != std::string::npos)
                    bare = bare.substr(q + 2);
                if (bare != scopes.back().className && !bare.empty() &&
                    bare[0] != '~') {
                    recordFnFact(Head{h.kind, bare, h.ret, h.params, "",
                                      h.isStatic, h.isConst},
                                 tu.classes[scopes.back().className]
                                     .methods);
                }
                i = matchBrace(s, i) - 1;
                stmt_start = i + 1;
                continue;
            }
            // Brace-initialized member / nested enum: skip the braces.
            harvestClassMember(headText, scopes.back().className,
                               tu.classes[scopes.back().className]);
            i = matchBrace(s, i) - 1;
            stmt_start = i + 1;
            continue;
        }
        // Inside some other scope (extern "C", function bodies never
        // reach here since they are skipped whole): track depth only.
        scopes.push_back({Head::Kind::Other, ""});
        stmt_start = i + 1;
    }
}

// ---------------------------------------------------------------------
// Scope tree / includes / env reads / lambdas / kernel regions
// ---------------------------------------------------------------------

void
buildScopeTree(const std::string &s, TuModel &tu)
{
    tu.scopes.push_back({0, s.size(), -1});
    std::vector<int> stack = {0};
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '{') {
            Scope sc;
            sc.begin = i;
            sc.end = s.size();
            sc.parent = stack.back();
            tu.scopes.push_back(sc);
            stack.push_back(static_cast<int>(tu.scopes.size()) - 1);
        } else if (s[i] == '}') {
            if (stack.size() > 1) {
                tu.scopes[static_cast<std::size_t>(stack.back())].end =
                    i + 1;
                stack.pop_back();
            }
        }
    }
}

void
scanIncludes(const std::string &original, TuModel &tu)
{
    std::istringstream is(original);
    std::string ln;
    int line = 0;
    while (std::getline(is, ln)) {
        ++line;
        std::size_t h = ln.find_first_not_of(" \t");
        if (h == std::string::npos || ln[h] != '#')
            continue;
        const std::size_t inc = ln.find("include", h);
        if (inc == std::string::npos)
            continue;
        const std::size_t q1 = ln.find('"', inc);
        if (q1 == std::string::npos)
            continue;
        const std::size_t q2 = ln.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        tu.includes.push_back({ln.substr(q1 + 1, q2 - q1 - 1), line});
    }
}

void
scanEnvReads(const std::string &s, TuModel &tu)
{
    static const char *readers[] = {"envInt", "envString", "getenv"};
    for (const char *reader : readers) {
        std::size_t pos = 0;
        const std::size_t len = std::string(reader).size();
        while ((pos = s.find(reader, pos)) != std::string::npos) {
            const std::size_t b = pos;
            pos += len;
            const bool lb = b == 0 || !isIdentChar(s[b - 1]);
            const bool rb = b + len >= s.size() || !isIdentChar(s[b + len]);
            if (!lb || !rb)
                continue;
            const std::size_t lp = skipWs(s, b + len);
            if (lp >= s.size() || s[lp] != '(')
                continue;
            const std::size_t rp = matchPair(s, lp, '(', ')');
            if (rp == std::string::npos)
                continue;
            // First string literal inside the call names the knob.
            for (const StringLit &lit : tu.strings) {
                if (lit.pos <= lp)
                    continue;
                if (lit.pos >= rp)
                    break;
                if (lit.text.rfind("BERTPROF_", 0) == 0) {
                    std::size_t e = 0;
                    while (e < lit.text.size() &&
                           (std::isupper(static_cast<unsigned char>(
                                lit.text[e])) ||
                            std::isdigit(static_cast<unsigned char>(
                                lit.text[e])) ||
                            lit.text[e] == '_')) {
                        ++e;
                    }
                    tu.envReads.push_back(
                        {lit.text.substr(0, e), reader, lineOf(s, b)});
                }
                break;
            }
        }
    }
}

/** Parse the lambda starting at its '[' ; npos fields on failure. */
bool
parseLambda(const std::string &s, std::size_t lb, LambdaInfo &out)
{
    const std::size_t rb = matchPair(s, lb, '[', ']');
    if (rb == std::string::npos)
        return false;
    // Split capture items on top-level commas.
    std::vector<std::string> items;
    {
        int depth = 0;
        std::size_t start = lb + 1;
        for (std::size_t i = lb + 1; i <= rb; ++i) {
            const char c = s[i];
            if (c == '(' || c == '{' || c == '[')
                ++depth;
            else if (c == ')' || c == '}')
                --depth;
            else if (c == ']' && i != rb)
                --depth;
            if ((c == ',' && depth == 0) || i == rb) {
                items.push_back(s.substr(start, i - start));
                start = i + 1;
            }
        }
    }
    for (std::string item : items) {
        item.erase(std::remove_if(item.begin(), item.end(),
                                  [](char c) {
                                      return std::isspace(
                                          static_cast<unsigned char>(c));
                                  }),
                   item.end());
        if (item.empty())
            continue;
        // Init-captures keep only the introduced name.
        const std::size_t eq = item.find('=');
        if (eq != std::string::npos && item != "=")
            item = item.substr(0, eq);
        if (item == "&") {
            out.defaultRef = true;
        } else if (item == "=") {
            out.defaultValue = true;
        } else if (item == "this" || item == "*this") {
            out.capturesThis = true;
        } else if (!item.empty() && item[0] == '&') {
            out.refCaptures.insert(item.substr(1));
        } else {
            out.valueCaptures.insert(item);
        }
    }
    // Optional parameter list.
    std::size_t i = skipWs(s, rb + 1);
    if (i < s.size() && s[i] == '(') {
        const std::size_t rp = matchPair(s, i, '(', ')');
        if (rp == std::string::npos)
            return false;
        const std::string params = s.substr(i + 1, rp - i - 1);
        int depth = 0;
        std::size_t start = 0;
        for (std::size_t j = 0; j <= params.size(); ++j) {
            const char c = j < params.size() ? params[j] : ',';
            if (c == '(' || c == '<' || c == '[')
                ++depth;
            else if (c == ')' || c == '>' || c == ']')
                --depth;
            if (c == ',' && depth <= 0) {
                const auto toks =
                    identTokens(params.substr(start, j - start));
                if (!toks.empty())
                    out.params.insert(toks.back());
                start = j + 1;
            }
        }
        i = rp + 1;
    }
    // Skip specifiers / trailing return type up to the body brace.
    const std::size_t body = s.find('{', i);
    if (body == std::string::npos)
        return false;
    out.bodyBegin = body + 1;
    const std::size_t end = matchBrace(s, body);
    out.bodyEnd = end > body + 1 ? end - 1 : body + 1;
    out.line = lineOf(s, lb);
    return true;
}

void
scanParallelRegions(const std::string &s, TuModel &tu)
{
    static const char *callees[] = {"parallelFor2d", "parallelFor"};
    std::set<std::size_t> seen; // parallelFor is a prefix of ..2d
    for (const char *callee : callees) {
        const std::size_t len = std::string(callee).size();
        std::size_t pos = 0;
        while ((pos = s.find(callee, pos)) != std::string::npos) {
            const std::size_t b = pos;
            pos += len;
            const bool lb = b == 0 || !isIdentChar(s[b - 1]);
            const bool rb = b + len >= s.size() || !isIdentChar(s[b + len]);
            if (!lb || !rb || seen.count(b))
                continue;
            seen.insert(b);
            const std::size_t lbr = s.find('[', b);
            if (lbr == std::string::npos)
                continue;
            ParallelRegion region;
            region.callee = callee;
            if (parseLambda(s, lbr, region.lambda))
                tu.parallelRegions.push_back(std::move(region));
        }
    }
}

void
scanKernelRegions(const std::string &s, TuModel &tu)
{
    std::size_t pos = 0;
    while ((pos = s.find("ScopedKernel", pos)) != std::string::npos) {
        const std::size_t b = pos;
        pos += 12;
        const bool lb = b == 0 || !isIdentChar(s[b - 1]);
        const bool rb = b + 12 >= s.size() || !isIdentChar(s[b + 12]);
        if (!lb || !rb)
            continue;
        // Declaration form only: `ScopedKernel name(...);` — skip
        // qualified mentions (ScopedKernel::..., ~ScopedKernel) and
        // parameter declarations (`ScopedKernel &k`).
        std::size_t i = skipWs(s, b + 12);
        if (i >= s.size() || !isIdentChar(s[i]) || (b > 0 && s[b - 1] == '~'))
            continue;
        while (i < s.size() && isIdentChar(s[i]))
            ++i;
        i = skipWs(s, i);
        if (i >= s.size() || s[i] != '(')
            continue;
        const std::size_t rp = matchPair(s, i, '(', ')');
        if (rp == std::string::npos)
            continue;
        const std::size_t semi = s.find(';', rp);
        if (semi == std::string::npos)
            continue;
        KernelRegion region;
        region.begin = semi + 1;
        region.end = tu.enclosingScopeEnd(b);
        region.line = lineOf(s, b);
        tu.kernelRegions.push_back(region);
    }
}

} // namespace

int
TuModel::innermostScope(std::size_t pos) const
{
    int best = 0;
    std::size_t bestSize = stripped.size() + 1;
    for (std::size_t i = 1; i < scopes.size(); ++i) {
        const Scope &sc = scopes[i];
        if (sc.begin < pos && pos < sc.end && sc.end - sc.begin < bestSize) {
            best = static_cast<int>(i);
            bestSize = sc.end - sc.begin;
        }
    }
    return best;
}

std::size_t
TuModel::enclosingScopeEnd(std::size_t pos) const
{
    const int sc = innermostScope(pos);
    return scopes[static_cast<std::size_t>(sc)].end;
}

TuModel
buildTuModel(const std::string &path, const std::string &text)
{
    TuModel tu;
    tu.path = path;
    tu.original = text;
    StrippedFile f = stripAndHarvest(text);
    tu.stripped = std::move(f.text);
    tu.supp = std::move(f.supp);
    tu.strings = std::move(f.strings);
    buildScopeTree(tu.stripped, tu);
    scanDeclarations(tu.stripped, tu);
    scanIncludes(tu.original, tu);
    scanEnvReads(tu.stripped, tu);
    scanParallelRegions(tu.stripped, tu);
    scanKernelRegions(tu.stripped, tu);
    return tu;
}

std::string
srcRelative(const std::string &path)
{
    const std::size_t sp = path.rfind("src/");
    if (sp == std::string::npos)
        return "";
    return path.substr(sp + 4);
}

const MethodFact *
ProjectModel::method(const std::string &type,
                     const std::string &methodName) const
{
    const auto ci = classes.find(type);
    if (ci == classes.end())
        return nullptr;
    const auto mi = ci->second.methods.find(methodName);
    return mi == ci->second.methods.end() ? nullptr : &mi->second;
}

std::set<std::string>
ProjectModel::reachable(const std::string &node) const
{
    std::set<std::string> seen;
    std::vector<std::string> work = {node};
    while (!work.empty()) {
        const std::string cur = work.back();
        work.pop_back();
        const auto it = includeGraph.find(cur);
        if (it == includeGraph.end())
            continue;
        for (const std::string &next : it->second) {
            if (next != node && seen.insert(next).second)
                work.push_back(next);
        }
    }
    return seen;
}

std::vector<std::vector<std::string>>
ProjectModel::findIncludeCycles() const
{
    std::vector<std::vector<std::string>> cycles;
    std::set<std::string> reported; // canonical cycle keys
    std::map<std::string, int> color; // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;

    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            color[node] = 1;
            stack.push_back(node);
            const auto it = includeGraph.find(node);
            if (it != includeGraph.end()) {
                for (const std::string &next : it->second) {
                    const int c = color.count(next) ? color[next] : 0;
                    if (c == 0) {
                        dfs(next);
                    } else if (c == 1) {
                        // Found a back edge: extract the cycle.
                        auto at = std::find(stack.begin(), stack.end(),
                                            next);
                        std::vector<std::string> cyc(at, stack.end());
                        // Canonicalize: rotate smallest name first.
                        auto mn =
                            std::min_element(cyc.begin(), cyc.end());
                        std::rotate(cyc.begin(), mn, cyc.end());
                        std::string key;
                        for (const auto &n : cyc)
                            key += n + "|";
                        if (reported.insert(key).second)
                            cycles.push_back(std::move(cyc));
                    }
                }
            }
            stack.pop_back();
            color[node] = 2;
        };

    for (const auto &kv : includeGraph) {
        if (!color.count(kv.first) || color[kv.first] == 0)
            dfs(kv.first);
    }
    return cycles;
}

ProjectModel
buildProjectModel(const std::vector<SourceFile> &files)
{
    ProjectModel pm;
    pm.tus.reserve(files.size());
    for (const SourceFile &f : files)
        pm.tus.push_back(buildTuModel(f.path, f.text));

    for (const TuModel &tu : pm.tus) {
        for (const auto &kv : tu.classes) {
            ClassFact &dst = pm.classes[kv.first];
            for (const auto &m : kv.second.methods)
                dst.methods.emplace(m.first, m.second);
            for (const auto &v : kv.second.memberTypes)
                dst.memberTypes.emplace(v.first, v.second);
        }
        for (const auto &kv : tu.freeFns)
            pm.freeFns.emplace(kv.first, kv.second);

        const std::string node = srcRelative(tu.path);
        if (node.empty())
            continue;
        pm.nodePath[node] = tu.path;
        auto &edges = pm.includeGraph[node];
        for (const IncludeEdge &inc : tu.includes) {
            if (inc.target.find('/') == std::string::npos)
                continue;
            if (std::find(edges.begin(), edges.end(), inc.target) ==
                edges.end()) {
                edges.push_back(inc.target);
            }
        }
    }
    return pm;
}

} // namespace bplint
