/**
 * @file
 * bptrace: replay a recorded run-trace container (.bptr) offline.
 *
 * The default view reproduces the live run's Fig. 3/4 profiler
 * breakdowns — same seconds, FLOPs, and bytes per bucket as the
 * process that recorded the trace printed, because kernel events
 * carry the exact integer-ns durations the live records were derived
 * from. Additional views walk the raw event stream forward or
 * backward (crash forensics: newest events first) and export Chrome
 * trace JSON / CSV through the same renderer the live exporter uses.
 *
 * Usage: bptrace <trace.bptr> [options]
 *   --breakdown scope|sublayer|phase|all   aggregate view (default all)
 *   --stats                                container + run stats only
 *   --tail N                               print newest N events first
 *   --chrome <out.json>                    write Chrome trace JSON
 *   --csv <out.csv>                        write per-kernel CSV
 *   --json <out.json>                      machine-readable summary
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/trace_export.h"
#include "runtime/profiler.h"
#include "telemetry/replay.h"
#include "telemetry/trace_reader.h"
#include "telemetry/trace_writer.h"
#include "util/table.h"

using namespace bertprof;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <trace.bptr> [--breakdown scope|sublayer|phase|all]\n"
        "       [--stats] [--tail N] [--chrome out.json] [--csv out.csv]\n"
        "       [--json out.json]\n",
        argv0);
    return 2;
}

void
printStats(const TraceReader &reader, const ReplaySummary &summary)
{
    std::printf("container: %zu chunks, %lld events, %zu names, "
                "%zu bytes on disk\n",
                reader.chunkCount(),
                static_cast<long long>(reader.eventCount()),
                reader.names().size(), reader.fileSize());
    if (summary.truncatedTail) {
        std::printf("torn tail: %s (complete chunks replayed)\n",
                    summary.tailMessage.c_str());
    }
    const double span =
        static_cast<double>(summary.lastTsNs - summary.firstTsNs) *
        1e-9;
    std::printf("run: %.3f s spanned, %zu kernels, %zu train steps, "
                "%zu checkpoints, %zu serve batches, %lld marks\n",
                span > 0 ? span : 0.0, summary.kernels.size(),
                summary.steps.size(), summary.checkpoints.size(),
                summary.serveBatches.size(),
                static_cast<long long>(summary.markCount));
    for (const auto &[name, total] : summary.counterTotals)
        std::printf("counter %s = %lld\n", name.c_str(),
                    static_cast<long long>(total));
    for (const auto &[name, value] : summary.gauges)
        std::printf("gauge %s = %g\n", name.c_str(), value);
}

void
printTail(const TraceReader &reader, std::int64_t limit)
{
    TraceBackwardIter iter(reader);
    TraceEvent event;
    std::int64_t shown = 0;
    std::printf("newest %lld events (reverse order):\n",
                static_cast<long long>(limit));
    while (shown < limit && iter.prev(event)) {
        std::printf("  %12lld ns  %-10s tid=%u  %s  v0=%lld\n",
                    static_cast<long long>(event.tsNs),
                    traceEventTypeName(event.type), event.tid,
                    reader.name(event.nameId).c_str(),
                    static_cast<long long>(event.v0));
        ++shown;
    }
}

void
printBreakdowns(const ReplaySummary &summary, const std::string &which)
{
    Profiler profiler;
    summary.fillProfiler(profiler);
    const Seconds total = profiler.totalSeconds();
    if (which == "scope" || which == "all") {
        Profiler::renderBreakdown(profiler.byScope(), total,
                                  "Replayed breakdown by layer scope "
                                  "(Fig. 3 axis)")
            .print(std::cout);
    }
    if (which == "sublayer" || which == "all") {
        Profiler::renderBreakdown(profiler.bySubLayer(), total,
                                  "Replayed breakdown by sub-layer "
                                  "(Fig. 4 axis)")
            .print(std::cout);
    }
    if (which == "phase" || which == "all") {
        Profiler::renderBreakdown(profiler.byPhase(), total,
                                  "Replayed breakdown by phase")
            .print(std::cout);
    }
}

bool
writeJsonSummary(const TraceReader &reader,
                 const ReplaySummary &summary, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    Profiler profiler;
    summary.fillProfiler(profiler);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"chunks\": %zu,\n", reader.chunkCount());
    std::fprintf(f, "  \"events\": %lld,\n",
                 static_cast<long long>(reader.eventCount()));
    std::fprintf(f, "  \"truncated_tail\": %s,\n",
                 summary.truncatedTail ? "true" : "false");
    std::fprintf(f, "  \"kernels\": %zu,\n", summary.kernels.size());
    std::fprintf(f, "  \"train_steps\": %zu,\n", summary.steps.size());
    std::fprintf(f, "  \"checkpoints\": %zu,\n",
                 summary.checkpoints.size());
    std::fprintf(f, "  \"serve_batches\": %zu,\n",
                 summary.serveBatches.size());
    std::fprintf(f, "  \"kernel_seconds\": %.9g,\n",
                 profiler.totalSeconds());
    std::fprintf(f, "  \"scopes\": {");
    bool first = true;
    for (const auto &[name, agg] : profiler.byScope()) {
        std::fprintf(f, "%s\n    \"%s\": {\"seconds\": %.9g, "
                        "\"flops\": %lld, \"bytes\": %lld}",
                     first ? "" : ",", name.c_str(), agg.seconds,
                     static_cast<long long>(agg.stats.flops),
                     static_cast<long long>(agg.stats.bytesTotal()));
        first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string path = argv[1];
    std::string breakdown = "all";
    std::string chrome_path, csv_path, json_path;
    bool stats_only = false;
    std::int64_t tail = 0;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--breakdown") == 0 && i + 1 < argc)
            breakdown = argv[++i];
        else if (std::strcmp(argv[i], "--stats") == 0)
            stats_only = true;
        else if (std::strcmp(argv[i], "--tail") == 0 && i + 1 < argc)
            tail = std::atoll(argv[++i]);
        else if (std::strcmp(argv[i], "--chrome") == 0 && i + 1 < argc)
            chrome_path = argv[++i];
        else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc)
            csv_path = argv[++i];
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            return usage(argv[0]);
    }
    if (breakdown != "scope" && breakdown != "sublayer" &&
        breakdown != "phase" && breakdown != "all") {
        return usage(argv[0]);
    }

    TraceReader reader;
    IoStatus status = reader.open(path);
    if (!status.ok()) {
        std::fprintf(stderr, "bptrace: %s\n",
                     status.toString().c_str());
        return 1;
    }
    ReplaySummary summary;
    TraceForwardIter iter(reader);
    TraceEvent event;
    while (iter.next(event))
        replayEvent(reader, event, summary);
    summary.truncatedTail = reader.truncatedTail();
    summary.tailMessage = reader.tailStatus().message;

    printStats(reader, summary);
    if (tail > 0)
        printTail(reader, tail);
    if (!stats_only && tail == 0)
        printBreakdowns(summary, breakdown);

    if (!chrome_path.empty()) {
        if (!writeProfileChromeTrace(summary.kernels, chrome_path)) {
            std::fprintf(stderr, "bptrace: cannot write %s\n",
                         chrome_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", chrome_path.c_str());
    }
    if (!csv_path.empty()) {
        if (!writeProfileCsv(summary.kernels, csv_path)) {
            std::fprintf(stderr, "bptrace: cannot write %s\n",
                         csv_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!json_path.empty()) {
        if (!writeJsonSummary(reader, summary, json_path)) {
            std::fprintf(stderr, "bptrace: cannot write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
