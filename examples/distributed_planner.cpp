/**
 * @file
 * Distributed-training planner: given a device count and a per-device
 * memory-style constraint on mini-batch, sweep data-parallel and
 * tensor-slicing (and hybrid) configurations of BERT-Large and report
 * modeled per-iteration time, exposed communication, and throughput —
 * the Sec. 5 analysis of the paper as a reusable tool.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/bertprof.h"

using namespace bertprof;

int
main(int argc, char **argv)
{
    const int devices = argc > 1 ? std::atoi(argv[1]) : 16;
    const std::int64_t per_device_batch =
        argc > 2 ? std::atoll(argv[2]) : 16;

    const DeviceSpec spec = mi100();
    const CommModel comm(spec, AllReduceAlgo::Ring);
    DataParallelModel dp(spec, comm);
    TensorSlicingModel ts(spec, comm);

    Table table("Distributed plans for BERT-Large Ph1 on " +
                std::to_string(devices) + " devices");
    table.setHeader({"Plan", "Global batch", "Iter time", "Comm (exposed)",
                     "Comm share", "Tokens/s (cluster)"});

    auto addRow = [&](const std::string &name, std::int64_t global_batch,
                      const DistributedProfile &profile) {
        const Seconds iter = profile.timed.totalSeconds();
        const double tokens_per_s =
            static_cast<double>(global_batch) * 128.0 / iter;
        table.addRow({name, std::to_string(global_batch),
                      formatSeconds(iter),
                      formatSeconds(profile.exposedCommSeconds),
                      formatPercent(profile.exposedCommSeconds / iter),
                      formatFlops(tokens_per_s).substr(
                          0, formatFlops(tokens_per_s).size() - 4)});
    };

    // Pure data parallel (with and without overlap).
    {
        BertConfig config = withPhase1(bertLarge(), per_device_batch);
        addRow("DP x" + std::to_string(devices) + " (overlap)",
               per_device_batch * devices,
               dp.evaluate(config, devices, true));
        addRow("DP x" + std::to_string(devices) + " (serial comm)",
               per_device_batch * devices,
               dp.evaluate(config, devices, false));
    }

    // Pure tensor slicing (limited to ways that divide heads).
    for (int ways : {2, 4, 8}) {
        if (ways > devices || 16 % ways != 0)
            continue;
        BertConfig config =
            withPhase1(bertLarge(), per_device_batch * ways);
        addRow("TS " + std::to_string(ways) + "-way",
               per_device_batch * ways, ts.evaluate(config, ways));
    }

    // Pipeline parallelism (GPipe-style, stages x micro-batches).
    {
        PipelineModel pp(spec, comm);
        for (int stages : {2, 4, 8}) {
            if (stages > devices || 24 % stages != 0)
                continue;
            const std::int64_t global_batch = per_device_batch * stages;
            BertConfig config = withPhase1(bertLarge(), global_batch);
            const int micro = 2 * stages;
            if (global_batch % micro != 0)
                continue;
            const auto profile = pp.evaluate(config, stages, micro);
            const double tokens_per_s =
                static_cast<double>(global_batch) * 128.0 /
                profile.totalSeconds;
            char bubble[32];
            std::snprintf(bubble, sizeof(bubble), "bubble %.0f%%",
                          100.0 * profile.bubbleFraction);
            table.addRow({"PP " + std::to_string(stages) + "-stage x" +
                              std::to_string(micro) + " micro",
                          std::to_string(global_batch),
                          formatSeconds(profile.totalSeconds), bubble,
                          formatPercent(profile.commSeconds /
                                        profile.totalSeconds),
                          formatFlops(tokens_per_s)
                              .substr(0, formatFlops(tokens_per_s).size() -
                                             4)});
        }
    }

    // ZeRO-style optimizer-sharded data parallel (Sec. 5.2's [69]).
    {
        ZeroShardingModel zero(spec, comm);
        BertConfig config = withPhase1(bertLarge(), per_device_batch);
        addRow("ZeRO-DP x" + std::to_string(devices),
               per_device_batch * devices,
               zero.evaluate(config, devices));
    }

    // Hybrid: TS within a group, DP across groups (with the DP
    // exchange of each device's parameter shard overlapped against
    // backprop, like plain DP).
    {
        HybridModel hybrid(spec, comm);
        for (int ways : {2, 4, 8}) {
            if (ways >= devices || devices % ways != 0 ||
                16 % ways != 0)
                continue;
            const int replicas = devices / ways;
            BertConfig config =
                withPhase1(bertLarge(), per_device_batch * ways);
            addRow("Hybrid TS" + std::to_string(ways) + " x DP" +
                       std::to_string(replicas),
                   per_device_batch * ways * replicas,
                   hybrid.evaluate(config, ways, replicas));
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Reading guide: DP with overlap hides almost all "
                "communication (paper Obs. 5); TS communication grows "
                "with ways (Takeaway 13); hybrids trade the two.\n");
    return 0;
}
