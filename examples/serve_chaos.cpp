/**
 * @file
 * Out-of-process chaos driver for the serving runtime, run by
 * scripts/check_chaos.sh with BERTPROF_FAULT armed: 8 client threads
 * push open-loop Poisson traffic at a multiple of the server's
 * measured capacity while submit/batch/compute faults fire. The
 * invariant under test is the overload tentpole's contract — every
 * submitted future resolves exactly once, with either logits or a
 * typed rejection, and shutdown drains cleanly (no deadlock, no
 * leaked promise).
 *
 * Usage: serve_chaos [--load <multiple>] [--requests <per-thread>]
 * Exit 0 and a final "unresolved futures: 0" line on success.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/bertprof.h"
#include "serve/server.h"
#include "serve/traffic.h"

using namespace bertprof;

int
main(int argc, char **argv)
{
    double load_multiple = 4.0;
    int per_thread = 16;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc)
            load_multiple = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            per_thread = std::atoi(argv[++i]);
    }

    BertConfig config;
    config.name = "bert-serve-chaos";
    config.numLayers = 2;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 4 * config.dModel;
    config.vocabSize = 512;
    config.maxPositions = 32;
    config.typeVocab = 2;
    config.batch = 1;
    config.seqLen = config.maxPositions;
    config.numClasses = 2;

    NnRuntime rt;
    BertClassifier model(config, &rt);
    Rng init(97);
    model.initialize(init);
    model.setTraining(false);
    ClassifierEngine engine(model, /*pad_id=*/3);
    const BucketSpec buckets({8, 16, 32});

    // Measure one padded forward to calibrate the offered load.
    double t_fwd = 0.0;
    {
        Rng calib(98);
        InferRequest probe =
            syntheticRequest(calib, 0, 16, config.vocabSize);
        std::vector<std::int64_t> tokens(16, 3), segments(16, 0);
        for (std::size_t t = 0; t < probe.tokenIds.size(); ++t) {
            tokens[t] = probe.tokenIds[t];
            segments[t] = probe.segmentIds[t];
        }
        for (int r = 0; r < 3; ++r) {
            Stopwatch watch;
            (void)model.forwardLogitsEval(tokens, segments, 1, 16,
                                          {16});
            const double t = watch.elapsed();
            if (r == 0 || t < t_fwd)
                t_fwd = t;
        }
    }
    const double capacity_qps = 8.0 / t_fwd; // maxBatch=8 best case
    const double offered_qps = load_multiple * capacity_qps;

    ServeOptions options;
    options.maxBatch = 8;
    options.maxWaitUs = 500;
    options.queueCap = 8;
    options.defaultDeadlineUs = std::max<std::int64_t>(
        20000, static_cast<std::int64_t>(4.0 * t_fwd * 1e6));
    InferenceServer server(engine, buckets, options);

    constexpr int kThreads = 8;
    const int total = kThreads * per_thread;
    std::printf("serve_chaos: %d threads x %d requests at %.1fx "
                "capacity (%.0f qps offered), deadline %.1f ms, "
                "faults: %s\n",
                kThreads, per_thread, load_multiple, offered_qps,
                static_cast<double>(options.defaultDeadlineUs) * 1e-3,
                std::getenv("BERTPROF_FAULT")
                    ? std::getenv("BERTPROF_FAULT")
                    : "(none)");

    std::atomic<int> resolved{0};
    std::atomic<int> completed{0};
    std::atomic<int> rejected{0};
    std::atomic<int> unresolved{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kThreads; ++c) {
        clients.emplace_back([&, c] {
            Rng body(static_cast<std::uint64_t>(7000 + c));
            const std::vector<double> schedule = poissonSchedule(
                offered_qps / kThreads, per_thread,
                static_cast<std::uint64_t>(100 + c));
            const MonoTime start = monoNow();
            std::vector<std::future<InferReply>> futures;
            futures.reserve(static_cast<std::size_t>(per_thread));
            for (int i = 0; i < per_thread; ++i) {
                std::this_thread::sleep_until(monoAddMicros(
                    start, static_cast<std::int64_t>(
                               schedule[static_cast<std::size_t>(i)] *
                               1e6)));
                const std::int64_t len = body.uniformInt(1, 32);
                futures.push_back(server.submit(syntheticRequest(
                    body,
                    static_cast<std::uint64_t>(c * per_thread + i),
                    len, config.vocabSize)));
            }
            for (auto &f : futures) {
                // A future that cannot deliver within a generous
                // watchdog window counts as unresolved (deadlock or
                // leaked promise) — the failure this driver exists
                // to catch.
                if (f.wait_for(std::chrono::seconds(60)) !=
                    std::future_status::ready) {
                    ++unresolved;
                    continue;
                }
                const InferReply reply = f.get();
                ++resolved;
                if (reply.ok)
                    ++completed;
                else if (reply.reject != RejectReason::None)
                    ++rejected;
                else
                    ++unresolved; // !ok with no reason = broken typing
            }
        });
    }
    for (auto &t : clients)
        t.join();
    server.shutdown();

    const ServerStats stats = server.stats();
    std::printf("resolved %d/%d (completed %d, typed rejects %d); "
                "server: completed %lld (in-deadline %lld), rejected "
                "expired %lld queue-full %lld shutdown %lld overlong "
                "%lld; degrade level %d\n",
                resolved.load(), total, completed.load(),
                rejected.load(),
                static_cast<long long>(stats.completed),
                static_cast<long long>(stats.completedInDeadline),
                static_cast<long long>(stats.rejectedExpired),
                static_cast<long long>(stats.rejectedQueueFull),
                static_cast<long long>(stats.rejectedShutdown),
                static_cast<long long>(stats.rejectedOverlong),
                stats.degradeLevel);
    std::printf("unresolved futures: %d\n", unresolved.load());

    if (unresolved.load() != 0 || resolved.load() != total) {
        std::fprintf(stderr, "serve_chaos: FAILED\n");
        return 1;
    }
    std::printf("serve_chaos: OK\n");
    return 0;
}
