/**
 * @file
 * Fine-tune a tiny pre-trained BERT on a synthetic classification
 * task (the Sec. 7 story, executed for real on the CPU substrate):
 * pre-train briefly with LAMB, transplant the encoder weights into a
 * classifier, fine-tune with Adam, and report accuracy — then show
 * that the profiled breakdown of fine-tuning matches pre-training's
 * (transformer-dominated, negligible output layer).
 */

#include <cstdio>
#include <iostream>

#include "core/bertprof.h"

using namespace bertprof;

namespace {

BertConfig
tinyConfig()
{
    BertConfig config;
    config.name = "bert-tiny";
    config.numLayers = 2;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 256;
    config.vocabSize = 256;
    config.maxPositions = 64;
    config.batch = 8;
    config.seqLen = 32;
    config.maxPredictions = 5;
    return config;
}

/** Copy encoder parameters by name from one module tree to another. */
void
transplantEncoder(Module &from, Module &to)
{
    auto src = from.parameters();
    auto dst = to.parameters();
    std::size_t copied = 0;
    for (Parameter *d : dst) {
        for (Parameter *s : src) {
            if (s->name == d->name &&
                s->value.shape() == d->value.shape()) {
                d->value = s->value.clone();
                ++copied;
                break;
            }
        }
    }
    std::printf("Transplanted %zu parameter tensors into the "
                "classifier.\n",
                copied);
}

} // namespace

int
main(int argc, char **argv)
{
    const int pretrain_iters = argc > 1 ? std::atoi(argv[1]) : 20;
    const int finetune_iters = argc > 2 ? std::atoi(argv[2]) : 40;

    NnRuntime rt;
    rt.dropoutP = 0.0f;

    // ---- Stage 1: brief pre-training (MLM + NSP, LAMB) ----
    BertConfig pretrain_config = tinyConfig();
    BertPretrainer pretrainer(pretrain_config, &rt);
    Rng init(99);
    pretrainer.initialize(init);
    SyntheticDataset pretrain_data(pretrain_config, 7);
    OptimizerConfig lamb_config;
    lamb_config.weightDecay = 0.01f;
    Lamb lamb(lamb_config);
    const LrSchedule pre_schedule(5e-3f, pretrain_iters / 5 + 1,
                                  pretrain_iters);
    std::printf("Pre-training %d iterations (LAMB)...\n",
                pretrain_iters);
    auto pre_params = pretrainer.parameters();
    for (int it = 0; it < pretrain_iters; ++it) {
        lamb.setLearningRate(pre_schedule.at(it));
        pretrainer.zeroGrad();
        const auto result =
            pretrainer.forwardBackward(pretrain_data.nextBatch());
        lamb.step(pre_params);
        if (it % 5 == 0 || it == pretrain_iters - 1)
            std::printf("  pretrain iter %3d  mlm %.3f  nsp %.3f\n", it,
                        result.mlmLoss, result.nspLoss);
    }

    // ---- Stage 2: fine-tune a classifier on the stripe task ----
    BertConfig ft_config = tinyConfig();
    ft_config.taskHead = TaskHead::SequenceClassification;
    ft_config.numClasses = 2;
    ft_config.optimizer = OptimizerKind::Adam;
    Profiler profiler;
    BertClassifier classifier(ft_config, &rt);
    Rng ft_init(100);
    classifier.initialize(ft_init);
    transplantEncoder(pretrainer, classifier);

    SyntheticDataset ft_data(ft_config, 8);
    OptimizerConfig adam_config;
    adam_config.learningRate = 2e-3f;
    adam_config.weightDecay = 0.0f;
    Adam adam(adam_config);
    auto ft_params = classifier.parameters();

    std::printf("\nFine-tuning %d iterations (Adam)...\n",
                finetune_iters);
    for (int it = 0; it < finetune_iters; ++it) {
        if (it == finetune_iters - 1)
            rt.profiler = &profiler; // paper methodology: profile one
                                     // steady-state iteration
        classifier.zeroGrad();
        const auto result =
            classifier.forwardBackward(ft_data.nextClassificationBatch());
        adam.step(ft_params);
        if (it % 8 == 0 || it == finetune_iters - 1)
            std::printf("  finetune iter %3d  loss %.3f  acc %4.1f%%\n",
                        it, result.loss, 100.0 * result.accuracy);
    }

    std::printf("\nProfiled fine-tuning iteration (real CPU "
                "execution):\n");
    Profiler::renderBreakdown(profiler.byScope(), profiler.totalSeconds(),
                              "By layer scope")
        .print(std::cout);
    std::printf("Sec. 7's claim, live: the transformer layers dominate "
                "fine-tuning too, and the classification head is "
                "negligible.\n");
    return 0;
}
