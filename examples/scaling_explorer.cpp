/**
 * @file
 * Scaling explorer: a small CLI over the analytical model. Pass any
 * of the Table 2a hyperparameters and training options and get the
 * modeled iteration breakdown — the tool you would use to project
 * bottlenecks for a future Transformer before building hardware.
 *
 * Usage:
 *   scaling_explorer [--layers N] [--dmodel D] [--heads H] [--dff F]
 *                    [--batch B] [--seq N] [--mp] [--checkpoint K]
 *                    [--adam] [--half-bw] [--2x-compute]
 *                    [--dump-csv FILE] [--dump-chrome FILE]
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/bertprof.h"

using namespace bertprof;

int
main(int argc, char **argv)
{
    BertConfig config = withPhase1(bertLarge(), 32);
    DeviceSpec spec = mi100();
    std::string dump_csv, dump_chrome;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> long long {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(1);
            }
            return std::atoll(argv[++i]);
        };
        if (arg == "--layers") {
            config.numLayers = static_cast<int>(next());
        } else if (arg == "--dmodel") {
            config.dModel = next();
        } else if (arg == "--heads") {
            config.numHeads = static_cast<int>(next());
        } else if (arg == "--dff") {
            config.dFf = next();
        } else if (arg == "--batch") {
            config.batch = next();
        } else if (arg == "--seq") {
            config.seqLen = next();
            config.maxPredictions = config.seqLen * 15 / 100;
        } else if (arg == "--mp") {
            config.precision = Precision::Mixed;
        } else if (arg == "--checkpoint") {
            config.checkpointEvery = static_cast<int>(next());
        } else if (arg == "--adam") {
            config.optimizer = OptimizerKind::Adam;
        } else if (arg == "--half-bw") {
            spec = mi100HalfBandwidth();
        } else if (arg == "--2x-compute") {
            spec = futureDoubleCompute();
        } else if (arg == "--dump-csv") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                return 1;
            }
            dump_csv = argv[++i];
        } else if (arg == "--dump-chrome") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                return 1;
            }
            dump_chrome = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see file header for usage\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return 1;
        }
    }

    const std::string problem = config.validate();
    if (!problem.empty()) {
        std::fprintf(stderr, "invalid configuration: %s\n",
                     problem.c_str());
        return 1;
    }

    Characterizer characterizer(spec);
    const auto result = characterizer.run(config);

    std::printf("Device %s | config %s | %lld parameters\n",
                spec.name.c_str(), config.tag().c_str(),
                static_cast<long long>(config.parameterCount()));
    std::printf("Modeled iteration: %s over %zu kernels "
                "(%s of GEMM work)\n",
                formatSeconds(result.totalSeconds).c_str(),
                result.kernelCount,
                formatPercent(result.gemmShare()).c_str());
    const MemoryFootprint footprint = trainingFootprint(config);
    std::printf("Memory footprint: %s\n",
                describeFootprint(footprint).c_str());
    const std::int64_t hbm = 32LL * 1024 * 1024 * 1024; // MI100 HBM2
    if (footprint.total() > hbm) {
        std::printf("  !! exceeds a 32 GiB device: consider "
                    "--checkpoint 6 or tensor slicing\n");
    }
    std::printf("\n");

    breakdownTable(result.byScope, result.totalSeconds, "By layer scope")
        .print(std::cout);
    breakdownTable(result.bySubLayer, result.totalSeconds,
                   "By sub-layer group")
        .print(std::cout);
    breakdownTable(result.byPhase, result.totalSeconds,
                   "By training phase")
        .print(std::cout);
    breakdownTable(result.byKind, result.totalSeconds, "By op kind")
        .print(std::cout);

    if (!dump_csv.empty() && writeTraceCsv(result.timed, dump_csv))
        std::printf("Wrote per-kernel CSV to %s\n", dump_csv.c_str());
    if (!dump_chrome.empty() &&
        writeChromeTrace(result.timed, dump_chrome)) {
        std::printf("Wrote Chrome trace to %s (open in "
                    "chrome://tracing)\n",
                    dump_chrome.c_str());
    }
    return 0;
}
