/**
 * @file
 * Train a tiny BERT for real on the CPU substrate: synthetic
 * masked-LM + NSP data, LAMB optimizer with warmup, live loss
 * reporting, and a profiled breakdown of the final iteration —
 * the whole pre-training pipeline of the paper at laptop scale,
 * driven by the crash-safe Trainer so runs can checkpoint, die
 * (including via BERTPROF_FAULT=kill@... injection), and resume
 * bitwise-identically.
 *
 * Usage:
 *   train_tiny_bert [--iters N] [--checkpoint-every K]
 *                   [--checkpoint-dir DIR] [--resume]
 * (a bare positional number is accepted as --iters for backward
 * compatibility with earlier revisions of this example).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/bertprof.h"

using namespace bertprof;

namespace {

struct Cli {
    int iterations = 30;
    long long checkpointEvery = 0;
    std::string checkpointDir = "checkpoints";
    bool resume = false;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--iters N] [--checkpoint-every K]\n"
                 "          [--checkpoint-dir DIR] [--resume]\n",
                 argv0);
    std::exit(2);
}

const char *
flagValue(int argc, char **argv, int &i, const char *argv0)
{
    if (i + 1 >= argc)
        usage(argv0);
    return argv[++i];
}

Cli
parseCli(int argc, char **argv)
{
    Cli cli;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--iters") == 0) {
            cli.iterations = std::atoi(flagValue(argc, argv, i, argv[0]));
        } else if (std::strcmp(arg, "--checkpoint-every") == 0) {
            cli.checkpointEvery =
                std::atoll(flagValue(argc, argv, i, argv[0]));
        } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
            cli.checkpointDir = flagValue(argc, argv, i, argv[0]);
        } else if (std::strcmp(arg, "--resume") == 0) {
            cli.resume = true;
        } else if (arg[0] != '-') {
            cli.iterations = std::atoi(arg);
        } else {
            usage(argv[0]);
        }
    }
    if (cli.iterations < 1)
        usage(argv[0]);
    return cli;
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli = parseCli(argc, argv);

    BertConfig config;
    config.name = "bert-tiny";
    config.numLayers = 2;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 256;
    config.vocabSize = 256;
    config.maxPositions = 64;
    config.batch = 4;
    config.seqLen = 32;
    config.maxPredictions = 5;

    NnRuntime rt;
    rt.dropoutP = 0.0f;
    Profiler profiler;

    BertPretrainer model(config, &rt);
    Rng init(1234);
    model.initialize(init);
    SyntheticDataset dataset(config, 77);

    OptimizerConfig opt_config;
    opt_config.weightDecay = 0.01f;
    Lamb lamb(opt_config);

    // Miniature BERT pre-training schedule: linear warmup for the
    // first fifth, then polynomial decay (You et al.), plus dynamic
    // loss scaling as a mixed-precision-style loop would use.
    const LrSchedule schedule(5e-3f, cli.iterations / 5 + 1,
                              cli.iterations, DecayKind::Polynomial, 1.0);
    GradScaler scaler(1024.0f);

    TrainerOptions trainer_options;
    trainer_options.checkpointEvery = cli.checkpointEvery;
    trainer_options.checkpointDir = cli.checkpointDir;
    Trainer trainer(model, lamb, scaler, schedule, dataset, rt,
                    trainer_options);

    if (cli.resume) {
        const IoStatus status = trainer.resumeLatest();
        if (status.ok()) {
            std::printf("Resumed from iteration %lld\n",
                        static_cast<long long>(trainer.iteration()));
        } else if (status.error == IoError::NotFound) {
            std::printf("No checkpoint in %s; starting fresh\n",
                        cli.checkpointDir.c_str());
        } else {
            std::fprintf(stderr, "resume failed: %s\n",
                         status.toString().c_str());
            return 1;
        }
    }

    std::printf("Training %s: %lld parameters, %d iterations\n",
                config.name.c_str(),
                static_cast<long long>(model.parameterCount()),
                cli.iterations);

    while (trainer.iteration() < cli.iterations) {
        const long long it = trainer.iteration();

        // Profile only the final iteration (the paper's methodology:
        // one steady-state iteration after warmup).
        if (it == cli.iterations - 1)
            rt.profiler = &profiler;

        const TrainStepResult step = trainer.trainStep();

        if (it % 5 == 0 || it == cli.iterations - 1 ||
            step.status != StepStatus::Applied) {
            std::string tag;
            if (step.status != StepStatus::Applied)
                tag = std::string("  [") + stepStatusName(step.status) +
                      "]";
            std::printf("  iter %3lld  lr %.4f  mlm loss %.4f "
                        "(acc %4.1f%%)  nsp loss %.4f (acc %4.1f%%)%s\n",
                        it, step.lr, step.metrics.mlmLoss,
                        100.0 * step.metrics.mlmAccuracy,
                        step.metrics.nspLoss,
                        100.0 * step.metrics.nspAccuracy, tag.c_str());
        }
        if (step.checkpointSaved) {
            std::printf("  iter %3lld  checkpoint saved to %s\n", it + 1,
                        cli.checkpointDir.c_str());
        }
    }

    std::printf("\nProfiled breakdown of the final iteration "
                "(real CPU execution):\n");
    Profiler::renderBreakdown(profiler.byScope(), profiler.totalSeconds(),
                              "By layer scope")
        .print(std::cout);
    Profiler::renderBreakdown(profiler.bySubLayer(),
                              profiler.totalSeconds(), "By sub-layer")
        .print(std::cout);
    return 0;
}
