/**
 * @file
 * Train a tiny BERT for real on the CPU substrate: synthetic
 * masked-LM + NSP data, LAMB optimizer with warmup, live loss
 * reporting, and a profiled breakdown of the final iteration —
 * the whole pre-training pipeline of the paper at laptop scale.
 */

#include <cstdio>
#include <iostream>

#include "core/bertprof.h"

using namespace bertprof;

int
main(int argc, char **argv)
{
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 30;

    BertConfig config;
    config.name = "bert-tiny";
    config.numLayers = 2;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 256;
    config.vocabSize = 256;
    config.maxPositions = 64;
    config.batch = 4;
    config.seqLen = 32;
    config.maxPredictions = 5;

    NnRuntime rt;
    rt.dropoutP = 0.0f;
    Profiler profiler;

    BertPretrainer trainer(config, &rt);
    Rng init(1234);
    trainer.initialize(init);
    SyntheticDataset dataset(config, 77);

    OptimizerConfig opt_config;
    opt_config.weightDecay = 0.01f;
    Lamb lamb(opt_config);
    auto params = trainer.parameters();

    std::printf("Training %s: %lld parameters, %d iterations\n",
                config.name.c_str(),
                static_cast<long long>(trainer.parameterCount()),
                iterations);

    // Miniature BERT pre-training schedule: linear warmup for the
    // first fifth, then polynomial decay (You et al.), plus dynamic
    // loss scaling as a mixed-precision-style loop would use.
    const LrSchedule schedule(5e-3f, iterations / 5 + 1, iterations,
                              DecayKind::Polynomial, 1.0);
    GradScaler scaler(1024.0f);
    for (int it = 0; it < iterations; ++it) {
        const float lr = schedule.at(it);
        lamb.setLearningRate(lr);

        // Profile only the final iteration (the paper's methodology:
        // one steady-state iteration after warmup).
        if (it == iterations - 1)
            rt.profiler = &profiler;

        const PretrainBatch batch = dataset.nextBatch();
        trainer.zeroGrad();
        const auto result =
            trainer.forwardBackward(batch, scaler.scale());
        const bool finite = scaler.unscale(params);
        scaler.update(finite);
        if (finite)
            lamb.step(params);

        if (it % 5 == 0 || it == iterations - 1) {
            std::printf("  iter %3d  lr %.4f  mlm loss %.4f (acc %4.1f%%)"
                        "  nsp loss %.4f (acc %4.1f%%)\n",
                        it, lr, result.mlmLoss,
                        100.0 * result.mlmAccuracy, result.nspLoss,
                        100.0 * result.nspAccuracy);
        }
    }

    std::printf("\nProfiled breakdown of the final iteration "
                "(real CPU execution):\n");
    Profiler::renderBreakdown(profiler.byScope(), profiler.totalSeconds(),
                              "By layer scope")
        .print(std::cout);
    Profiler::renderBreakdown(profiler.bySubLayer(),
                              profiler.totalSeconds(), "By sub-layer")
        .print(std::cout);
    return 0;
}
