/**
 * @file
 * Quickstart: characterize one BERT-Large pre-training iteration with
 * the public API — build the config, run the Characterizer, and print
 * the paper-style breakdowns. This is the 20-line tour of the
 * library.
 */

#include <cstdio>
#include <iostream>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    // 1. Pick a model / input configuration (Table 2a parameters).
    BertConfig config = withPhase1(bertLarge(), /*batch=*/32);

    // 2. Pick (or customize) a device. Defaults approximate an
    //    AMD Instinct MI100.
    Characterizer characterizer(mi100());

    // 3. Characterize one training iteration.
    const CharacterizationResult result = characterizer.run(config);

    std::printf("Config %s: %zu kernels, modeled iteration time %s\n\n",
                config.tag().c_str(), result.kernelCount,
                formatSeconds(result.totalSeconds).c_str());

    // 4. Print the Fig. 3-style layer breakdown ...
    breakdownTable(result.byScope, result.totalSeconds,
                   "By layer scope (Fig. 3 axis)")
        .print(std::cout);

    // ... the Fig. 4-style sub-layer breakdown ...
    breakdownTable(result.bySubLayer, result.totalSeconds,
                   "By sub-layer group (Fig. 4 axis)")
        .print(std::cout);

    // ... the per-GEMM arithmetic-intensity table (Fig. 6) ...
    gemmIntensityTable(result, characterizer.spec(), 0).print(std::cout);

    // ... and the classic profiler view: hottest kernels.
    topKernelsTable(result.timed, 10).print(std::cout);
    return 0;
}
