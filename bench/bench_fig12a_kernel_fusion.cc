/**
 * @file
 * Reproduces Fig. 12a: the impact of kernel fusion on kernel count,
 * runtime, and memory traffic for (1) LayerNorm and (2) the optimizer
 * (Adam, as in the paper, because fused and unfused versions are both
 * available; LAMB is also reported).
 *
 * Paper reference points: LayerNorm fusion shrinks kernels, runtime,
 * and traffic together by ~6-8x (high producer-consumer reuse). Adam
 * fusion cuts kernel count by ~250x but runtime/traffic only ~6-8x —
 * its unfused kernels touch independent per-layer data, so fusion
 * can't remove those accesses.
 */

#include <cstdio>

#include "core/bertprof.h"
#include "ops/elementwise.h"
#include "ops/fused.h"
#include "ops/layernorm.h"
#include "util/stopwatch.h"

using namespace bertprof;

namespace {

struct GroupTotals {
    std::int64_t kernels = 0;
    Seconds seconds = 0.0;
    double bytes = 0.0;
};

template <typename Pred>
GroupTotals
totals(const TimedTrace &timed, Pred pred)
{
    GroupTotals t;
    for (const auto &op : timed.ops) {
        if (!pred(op.op))
            continue;
        ++t.kernels;
        t.seconds += op.time.total();
        t.bytes += static_cast<double>(op.op.stats.bytesTotal());
    }
    return t;
}

void
addComparison(Table &table, const char *label, const GroupTotals &unfused,
              const GroupTotals &fused)
{
    char kernel_ratio[32], time_ratio[32], bytes_ratio[32];
    std::snprintf(kernel_ratio, sizeof(kernel_ratio), "%.0fx",
                  static_cast<double>(unfused.kernels) /
                      static_cast<double>(fused.kernels));
    std::snprintf(time_ratio, sizeof(time_ratio), "%.1fx",
                  unfused.seconds / fused.seconds);
    std::snprintf(bytes_ratio, sizeof(bytes_ratio), "%.1fx",
                  unfused.bytes / fused.bytes);
    table.addRow({label,
                  std::to_string(unfused.kernels) + " -> " +
                      std::to_string(fused.kernels),
                  kernel_ratio,
                  formatSeconds(unfused.seconds) + " -> " +
                      formatSeconds(fused.seconds),
                  time_ratio,
                  formatBytes(unfused.bytes) + " -> " +
                      formatBytes(fused.bytes),
                  bytes_ratio});
}

} // namespace

int
main()
{
    Characterizer characterizer(mi100());
    const BertConfig base = withPhase1(bertLarge(), 32);

    Table table("Fig. 12a — kernel fusion impact (Ph1-B32-FP32)");
    table.setHeader({"Op", "Kernels", "Kernel x", "Runtime", "Runtime x",
                     "Mem traffic", "Traffic x"});

    // -- LayerNorm: unfused (per-EW-op kernels) vs fused --
    {
        TraceOptions unfused_opt;
        unfused_opt.unfuseLayerNorm = true;
        const auto unfused = characterizer.run(base, unfused_opt);
        const auto fused = characterizer.run(base, {});
        auto is_ln = [](const OpDesc &op) {
            return op.name.find(".ln") != std::string::npos &&
                   op.phase == Phase::Fwd;
        };
        addComparison(table, "LayerNorm (fwd)",
                      totals(unfused.timed, is_ln),
                      totals(fused.timed, is_ln));
    }

    // -- Adam: eager unfused vs multi-tensor fused --
    {
        BertConfig adam_config = base;
        adam_config.optimizer = OptimizerKind::Adam;
        TraceOptions unfused_opt;
        unfused_opt.optimizerFusion = OptimizerFusion::Unfused;
        TraceOptions fused_opt;
        fused_opt.optimizerFusion = OptimizerFusion::MultiTensor;
        const auto unfused = characterizer.run(adam_config, unfused_opt);
        const auto fused = characterizer.run(adam_config, fused_opt);
        auto is_update = [](const OpDesc &op) {
            return op.phase == Phase::Update;
        };
        addComparison(table, "Adam update",
                      totals(unfused.timed, is_update),
                      totals(fused.timed, is_update));
    }

    // -- LAMB: per-tensor two-stage (the paper's default) vs
    //    multi-tensor: kernel count drops but traffic barely moves
    //    (independent data, Sec. 6.1.1) --
    {
        TraceOptions per_tensor;
        per_tensor.optimizerFusion = OptimizerFusion::PerTensorStages;
        TraceOptions multi;
        multi.optimizerFusion = OptimizerFusion::MultiTensor;
        const auto unfused = characterizer.run(base, per_tensor);
        const auto fused = characterizer.run(base, multi);
        auto is_update = [](const OpDesc &op) {
            return op.phase == Phase::Update;
        };
        addComparison(table, "LAMB per-tensor vs multi-tensor",
                      totals(unfused.timed, is_update),
                      totals(fused.timed, is_update));
    }

    std::printf("%s\n", table.render().c_str());

    // Real-execution cross-check on the CPU substrate: the same
    // Adam update run fused (one pass) vs eager-unfused (one kernel
    // per elementary op), measured with the profiler.
    {
        auto make_params = [](std::vector<Parameter> &storage) {
            storage.clear();
            storage.reserve(6);
            Rng rng(17);
            for (std::int64_t numel :
                 {1 << 16, 1 << 16, 1 << 14, 1 << 12, 1024, 1024}) {
                char name[16];
                std::snprintf(name, sizeof(name), "p%zu",
                              storage.size());
                storage.emplace_back(name, Shape({numel}));
                storage.back().value.fillNormal(rng);
                storage.back().grad.fillNormal(rng);
            }
            std::vector<Parameter *> out;
            for (auto &param : storage)
                out.push_back(&param);
            return out;
        };

        Profiler fused_prof, unfused_prof;
        std::vector<Parameter> fused_storage, unfused_storage;
        auto fused_params = make_params(fused_storage);
        auto unfused_params = make_params(unfused_storage);
        Adam fused(OptimizerConfig{}, &fused_prof);
        UnfusedAdam unfused(OptimizerConfig{}, &unfused_prof);
        for (int repeat = 0; repeat < 20; ++repeat) {
            fused.step(fused_params);
            unfused.step(unfused_params);
        }

        auto bytes = [](const Profiler &profiler) {
            double total = 0.0;
            for (const auto &rec : profiler.records())
                total += static_cast<double>(rec.stats.bytesTotal());
            return total;
        };
        std::printf("Measured on the CPU substrate (20 steps over 6 "
                    "tensors):\n"
                    "  kernels %zu -> %zu (%.0fx), wall %s -> %s "
                    "(%.1fx), traffic %s -> %s (%.1fx)\n\n",
                    unfused_prof.records().size(),
                    fused_prof.records().size(),
                    static_cast<double>(unfused_prof.records().size()) /
                        static_cast<double>(fused_prof.records().size()),
                    formatSeconds(unfused_prof.totalSeconds()).c_str(),
                    formatSeconds(fused_prof.totalSeconds()).c_str(),
                    unfused_prof.totalSeconds() /
                        fused_prof.totalSeconds(),
                    formatBytes(bytes(unfused_prof)).c_str(),
                    formatBytes(bytes(fused_prof)).c_str(),
                    bytes(unfused_prof) / bytes(fused_prof));
    }

    // Real-execution cross-check of the LayerNorm row: the fused
    // residual+LN kernel (ops/fused.h) vs the unfused add-then-LN
    // pair, measured on the CPU substrate with traffic from
    // KernelStats (measured vs the analytical model above).
    {
        Rng rng(23);
        const std::int64_t rows = 4096, cols = 1024;
        Tensor a(Shape({rows, cols})), b(Shape({rows, cols}));
        a.fillNormal(rng);
        b.fillNormal(rng);
        Tensor gamma(Shape({cols})), beta(Shape({cols}));
        gamma.fill(1.0f);
        Tensor out(a.shape()), mean(Shape({rows})), rstd(Shape({rows}));
        const int reps = 20;

        KernelStats unfused_stats, fused_stats;
        Seconds unfused_s = 0.0, fused_s = 0.0;
        {
            Tensor sum(a.shape());
            Stopwatch w;
            for (int r = 0; r < reps; ++r) {
                unfused_stats = addForward(a, b, sum);
                unfused_stats +=
                    layerNormForward(sum, gamma, beta, out, mean, rstd);
            }
            unfused_s = w.elapsed() / reps;
        }
        {
            Stopwatch w;
            for (int r = 0; r < reps; ++r)
                fused_stats = fusedResidualLayerNormForward(
                    a, b, gamma, beta, out, mean, rstd);
            fused_s = w.elapsed() / reps;
        }
        std::printf("Measured residual+LN on the CPU substrate "
                    "(%lldx%lld, %d reps): wall %s -> %s (%.2fx), "
                    "traffic %s -> %s (%.2fx analytical)\n\n",
                    static_cast<long long>(rows),
                    static_cast<long long>(cols), reps,
                    formatSeconds(unfused_s).c_str(),
                    formatSeconds(fused_s).c_str(), unfused_s / fused_s,
                    formatBytes(static_cast<double>(
                                    unfused_stats.bytesTotal()))
                        .c_str(),
                    formatBytes(
                        static_cast<double>(fused_stats.bytesTotal()))
                        .c_str(),
                    static_cast<double>(unfused_stats.bytesTotal()) /
                        static_cast<double>(fused_stats.bytesTotal()));
    }

    std::printf("Paper: LayerNorm fusion ~6-8x on all three metrics; "
                "Adam fusion ~250x kernels but only ~6-8x runtime/"
                "traffic; fusing optimizer work across layers gains "
                "little (independent data).\n");
    return 0;
}
