/**
 * @file
 * Reproduces Fig. 11: per-GPU iteration breakdown for multi-device
 * training of BERT-Large on a 128-GPU cluster:
 *   S1 — single GPU, B=16
 *   D1 — data parallel, B=16/device, gradients communicated after the
 *        whole backprop (no overlap)
 *   D2 — data parallel, B=16/device, per-layer communication
 *        overlapped with backprop
 *   T1 — 2-way tensor slicing (Megatron-LM), B=16
 *   T2 — 8-way tensor slicing, B=64
 *
 * Paper reference points: D2 ~= S1 (overlap hides almost all
 * communication); D1 spends ~19% communicating; T1 ~9% communication;
 * T2 ~42% with a negligible LAMB share (parameters split 8 ways) and
 * a larger replicated DR+RC+LN share.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

namespace {

std::vector<std::string>
profileRow(const char *label, const DistributedProfile &profile)
{
    const Seconds total = profile.timed.totalSeconds();
    auto scopes = profile.timed.byScope();
    auto share = [&](const char *scope) {
        auto it = scopes.find(scope);
        return formatPercent(it != scopes.end() ? it->second.seconds / total
                                                : 0.0);
    };
    auto subs = profile.timed.bySubLayer();
    auto drrcln = subs.find("DR+RC+LN");
    return {label,
            formatSeconds(total),
            share("Transformer"),
            share("Optimizer"),
            share("Network"),
            formatPercent(drrcln != subs.end()
                              ? drrcln->second.seconds / total
                              : 0.0)};
}

} // namespace

int
main()
{
    const DeviceSpec spec = mi100();
    const CommModel comm(spec, AllReduceAlgo::Ring);
    Characterizer characterizer(spec);
    DataParallelModel dp(spec, comm);
    TensorSlicingModel ts(spec, comm);

    Table table("Fig. 11 — per-GPU breakdown, 128-GPU cluster "
                "(BERT-Large, Ph1, FP32)");
    table.setHeader({"Config", "Iter time", "Transformer", "LAMB",
                     "Network", "DR+RC+LN"});

    // S1: single GPU, B=16.
    {
        const auto result = characterizer.run(withPhase1(bertLarge(), 16));
        table.addRow({"S1 (1 GPU, B=16)",
                      formatSeconds(result.totalSeconds),
                      formatPercent(result.scopeShare("Transformer")),
                      formatPercent(result.scopeShare("Optimizer")), "0%",
                      formatPercent(result.subLayerShare("DR+RC+LN"))});
    }
    // D1 / D2: 128-way data parallel.
    table.addRow(profileRow(
        "D1 (DP, B=16, no overlap)",
        dp.evaluate(withPhase1(bertLarge(), 16), 128, /*overlap=*/false)));
    table.addRow(profileRow(
        "D2 (DP, B=16, overlap)",
        dp.evaluate(withPhase1(bertLarge(), 16), 128, /*overlap=*/true)));
    // T1 / T2: tensor slicing within a node.
    table.addRow(profileRow("T1 (TS 2-way, B=16)",
                            ts.evaluate(withPhase1(bertLarge(), 16), 2)));
    table.addRow(profileRow("T2 (TS 8-way, B=64)",
                            ts.evaluate(withPhase1(bertLarge(), 64), 8)));

    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: D2 ~= S1; D1 ~19%% communication; T1 ~9%%; T2 "
                "~42%% with negligible LAMB and a larger replicated "
                "DR+RC+LN share.\n");
    return 0;
}
