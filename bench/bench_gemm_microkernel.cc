/**
 * @file
 * Packed microkernel vs. reference GEMM engine over the paper's
 * Table 2b BERT-Large GEMM shapes — the kernels that dominate
 * training time (Table 1, Figs. 3-4). Every shape family appears
 * with the trans_a/trans_b combination the model actually issues
 * (attention's K^T score GEMM, the backward weight gradients'
 * A^T B), plus one (T,T) case so all four combinations are covered.
 * Reports GFLOP/s per engine and the packed-over-reference speedup,
 * single-threaded so the comparison isolates the per-core hot path.
 *
 * Usage: bench_gemm_microkernel [--quick] [--json <path>]
 *   --quick shrinks the mini-batch and repetitions for CI smoke runs.
 *   --json writes a machine-readable results file (see
 *   scripts/run_bench.sh, which snapshots it into results/).
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/bertprof.h"
#include "ops/gemm.h"
#include "runtime/config.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace bertprof;

namespace {

/** Best-of-reps wall time of fn() in seconds (monotonic clock). */
Seconds
timeBest(int reps, const std::function<void()> &fn)
{
    Seconds best = 0.0;
    for (int r = 0; r < reps; ++r) {
        Stopwatch watch;
        fn();
        const Seconds t = watch.elapsed();
        if (r == 0 || t < best)
            best = t;
    }
    return best;
}

struct ShapeCase {
    std::string name;
    std::int64_t m, n, k;
    std::int64_t batch; // 1 = plain gemm, >1 = batchedGemm
    bool trans_a, trans_b;
};

struct Result {
    ShapeCase shape;
    double ref_gflops = 0.0;
    double packed_gflops = 0.0;
    double speedup = 0.0;
    float max_abs_diff = 0.0f;
};

std::string
transLabel(const ShapeCase &s)
{
    return std::string(s.trans_a ? "T" : "N") + (s.trans_b ? "T" : "N");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    // BERT-Large phase-1 geometry (Table 2b): n = 128, h = 16,
    // d_head = 64, d_model = 1024, d_ff = 4096. The mini-batch is
    // sized so the reference sweep stays tractable on one core.
    const std::int64_t seq = 128;
    const std::int64_t heads = 16;
    const std::int64_t batch = quick ? 1 : 4;
    const std::int64_t groups = batch * heads;
    const std::int64_t d_head = 64;
    const std::int64_t d_model = quick ? 256 : 1024;
    const std::int64_t d_ff = 4 * d_model;
    const std::int64_t tokens = batch * seq;
    const int reps = quick ? 1 : 3;

    const std::vector<ShapeCase> shapes = {
        // Encoder linear projections (QKV/output): FWD x W^T, the
        // activation gradient (N,N), and the weight gradient (T,N).
        {"linear FWD", tokens, d_model, d_model, 1, false, true},
        {"linear BWD-act", tokens, d_model, d_model, 1, false, false},
        {"linear BWD-wgt", d_model, d_model, tokens, 1, true, false},
        // Attention score QK^T and its two backward forms, batched
        // over B*h heads.
        {"attn score FWD", seq, seq, d_head, groups, false, true},
        {"attn out FWD", seq, d_head, seq, groups, false, false},
        {"attn dV", seq, d_head, seq, groups, true, false},
        // Feed-forward pair.
        {"FC-1 FWD", tokens, d_ff, d_model, 1, false, true},
        {"FC-2 FWD", tokens, d_model, d_ff, 1, false, true},
        // (T,T) completes the transpose coverage at the linear shape.
        {"linear (T,T)", tokens, d_model, d_model, 1, true, true},
    };

    setNumThreads(1); // isolate the per-core hot path

    std::vector<Result> results;
    for (const ShapeCase &s : shapes) {
        Rng rng(90210);
        const Shape a_shape =
            s.batch > 1
                ? (s.trans_a ? Shape({s.batch, s.k, s.m})
                             : Shape({s.batch, s.m, s.k}))
                : (s.trans_a ? Shape({s.k, s.m}) : Shape({s.m, s.k}));
        const Shape b_shape =
            s.batch > 1
                ? (s.trans_b ? Shape({s.batch, s.n, s.k})
                             : Shape({s.batch, s.k, s.n}))
                : (s.trans_b ? Shape({s.n, s.k}) : Shape({s.k, s.n}));
        const Shape c_shape = s.batch > 1 ? Shape({s.batch, s.m, s.n})
                                          : Shape({s.m, s.n});
        Tensor a(a_shape), b(b_shape), c(c_shape);
        a.fillNormal(rng);
        b.fillNormal(rng);

        const auto run = [&] {
            if (s.batch > 1)
                batchedGemm(a, b, c, s.trans_a, s.trans_b);
            else
                gemm(a, b, c, s.trans_a, s.trans_b);
        };
        const double flops = 2.0 * static_cast<double>(s.m) *
                             static_cast<double>(s.n) *
                             static_cast<double>(s.k) *
                             static_cast<double>(s.batch);

        Result r;
        r.shape = s;

        setGemmImpl(GemmImpl::Reference);
        run(); // warm-up: page in buffers
        const Seconds t_ref = timeBest(reps, run);
        Tensor c_ref = c.clone();

        setGemmImpl(GemmImpl::Packed);
        run();
        const Seconds t_packed = timeBest(reps, run);
        r.max_abs_diff = maxAbsDiff(c, c_ref); // engines must agree

        r.ref_gflops = flops / t_ref * 1e-9;
        r.packed_gflops = flops / t_packed * 1e-9;
        r.speedup = t_ref / t_packed;
        results.push_back(r);
    }
    clearGemmImplOverride();
    setNumThreads(0);

    Table table("GEMM engines, Table 2b BERT-Large shapes "
                "(1 thread, best of " +
                std::to_string(reps) + "; B=" + std::to_string(batch) +
                ", n=" + std::to_string(seq) +
                ", d_model=" + std::to_string(d_model) + ")");
    table.setHeader({"Kernel", "tAtB", "M x N x K [b]", "ref GF/s",
                     "packed GF/s", "speedup", "max|diff|"});
    char buf[64];
    for (const Result &r : results) {
        std::vector<std::string> row;
        row.push_back(r.shape.name);
        row.push_back(transLabel(r.shape));
        std::string dims = std::to_string(r.shape.m) + " x " +
                           std::to_string(r.shape.n) + " x " +
                           std::to_string(r.shape.k);
        if (r.shape.batch > 1)
            dims += " [" + std::to_string(r.shape.batch) + "]";
        row.push_back(dims);
        std::snprintf(buf, sizeof(buf), "%.2f", r.ref_gflops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2f", r.packed_gflops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2fx", r.speedup);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2e", r.max_abs_diff);
        row.push_back(buf);
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Both engines run the identical deterministic row "
                "partition; max|diff| is rounding from their different\n"
                "association orders, not nondeterminism "
                "(tests/test_gemm_microkernel.cc cross-checks both).\n");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_gemm_microkernel\",\n");
        std::fprintf(f, "  \"config\": {\"threads\": 1, \"reps\": %d, "
                        "\"batch\": %lld, \"seq\": %lld, \"d_model\": %lld, "
                        "\"quick\": %s},\n",
                     reps, static_cast<long long>(batch),
                     static_cast<long long>(seq),
                     static_cast<long long>(d_model),
                     quick ? "true" : "false");
        std::fprintf(f, "  \"shapes\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const Result &r = results[i];
            std::fprintf(
                f,
                "    {\"name\": \"%s\", \"trans\": \"%s\", \"m\": %lld, "
                "\"n\": %lld, \"k\": %lld, \"batch\": %lld, "
                "\"ref_gflops\": %.4f, \"packed_gflops\": %.4f, "
                "\"speedup\": %.4f, \"max_abs_diff\": %.6e}%s\n",
                r.shape.name.c_str(), transLabel(r.shape).c_str(),
                static_cast<long long>(r.shape.m),
                static_cast<long long>(r.shape.n),
                static_cast<long long>(r.shape.k),
                static_cast<long long>(r.shape.batch), r.ref_gflops,
                r.packed_gflops, r.speedup,
                static_cast<double>(r.max_abs_diff),
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
