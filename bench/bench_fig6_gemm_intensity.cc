/**
 * @file
 * Reproduces Fig. 6: arithmetic intensity (FLOP/byte) of every GEMM
 * in one BERT transformer layer (Ph1-B32-FP32), labeled in the
 * paper's "transposeA, transposeB, M, N, K, [batch]" format, plus the
 * modeled efficiency — showing that not all of BERT's GEMMs are
 * equal: FC GEMMs are large and compute-intense, linear-projection
 * GEMMs are 4x smaller, and attention B-GEMMs have very low ops/byte.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());
    const BertConfig config = withPhase1(bertLarge(), 32);
    const auto result = characterizer.run(config);

    Table table = gemmIntensityTable(result, characterizer.spec(), 0);
    std::printf("%s\n", table.render().c_str());

    // Also include the backward GEMMs of layer 0 for completeness.
    Table bwd("Backward GEMMs of layer 0");
    bwd.setHeader({"Kernel", "Dims", "FLOP/B"});
    for (const auto &timed : result.timed.ops) {
        const OpDesc &op = timed.op;
        if (op.layerIndex != 0 || op.phase != Phase::Bwd)
            continue;
        if (op.kind != OpKind::Gemm && op.kind != OpKind::BatchedGemm)
            continue;
        char intensity[32];
        std::snprintf(intensity, sizeof(intensity), "%.2f",
                      op.opsPerByte());
        bwd.addRow({op.name, op.gemm.label(), intensity});
    }
    std::printf("%s\n", bwd.render().c_str());
    std::printf("Paper: FC GEMMs most compute-intense; linear GEMMs have "
                "4x smaller dims and lower FLOP/B; attention B-GEMMs "
                "have extremely low FLOP/B.\n");
    return 0;
}
