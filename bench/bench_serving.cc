/**
 * @file
 * Request-level serving bench: open-loop Poisson traffic against the
 * inference server under two policies — naive (every request padded
 * to the model maximum, batch size 1: the pad-everything baseline the
 * paper's input-size sweep argues against) and bucketed+batched
 * (sequence-length buckets from the Fig. 8 ladder plus dynamic
 * max-batch/max-wait coalescing). Reports achieved throughput and
 * p50/p99/p99.9 latency at several offered-load points, expressed as
 * multiples of the naive policy's measured capacity so the sweep is
 * machine-independent.
 *
 * A second mode, --overload, sweeps offered load to 4x the bucketed
 * policy's measured capacity and compares the overload-resilient
 * config (admission control + deadline shedding + degradation
 * ladder) against a no-shedding baseline (unbounded queue, every
 * accepted request computed even after its deadline). Reported per
 * point: throughput, goodput (completed before deadline / s), and
 * accepted-request latency percentiles — the numbers that show
 * shedding converting dead work into on-time replies.
 *
 * Usage: bench_serving [--quick] [--overload] [--json <path>]
 *   --quick shrinks the model and request counts for CI smoke runs.
 *   --overload runs the overload-resilience sweep instead of the
 *   naive-vs-bucketed policy comparison.
 *   --json writes a machine-readable results file (see
 *   scripts/run_bench.sh, which snapshots it into results/).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/bertprof.h"
#include "serve/server.h"
#include "serve/traffic.h"

using namespace bertprof;

namespace {

struct PolicyResult {
    double qps = 0.0;     ///< completed / s
    double goodput = 0.0; ///< completed before deadline / s
    double p50Ms = 0.0;   ///< accepted-request percentiles
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double meanMs = 0.0;
    std::int64_t completed = 0;
    std::int64_t inDeadline = 0;
    std::int64_t rejected = 0;
};

/**
 * Replay `schedule` open-loop against a fresh server; summarize.
 * `warmup` requests (if any) run to completion first with generous
 * deadlines and are excluded from the summary — they prime the
 * engine's caches and the batcher's per-bucket service-time EWMAs so
 * the measured phase sees steady-state admission behavior.
 */
PolicyResult
runLoad(InferenceEngine &engine, const BucketSpec &buckets,
        const ServeOptions &options,
        const std::vector<InferRequest> &requests,
        const std::vector<double> &schedule,
        const std::vector<InferRequest> &warmup = {})
{
    InferenceServer server(engine, buckets, options);
    if (!warmup.empty()) {
        std::vector<std::future<InferReply>> primers;
        primers.reserve(warmup.size());
        for (InferRequest req : warmup) {
            req.deadline = monoAddMicros(monoNow(), 60'000'000);
            primers.push_back(server.submit(std::move(req)));
        }
        for (auto &f : primers)
            f.wait();
        server.resetStats();
    }
    std::vector<std::future<InferReply>> futures;
    futures.reserve(requests.size());
    const MonoTime start = monoNow();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        // Absolute schedule: submission times never depend on how
        // fast replies come back (open loop).
        std::this_thread::sleep_until(monoAddMicros(
            start, static_cast<std::int64_t>(schedule[i] * 1e6)));
        futures.push_back(server.submit(requests[i]));
    }
    for (auto &f : futures)
        f.wait();
    const double span = secondsBetween(start, monoNow());
    const LatencySummary s = server.latencySummary();
    const ServerStats stats = server.stats();
    PolicyResult r;
    r.completed = stats.completed;
    r.inDeadline = stats.completedInDeadline;
    r.rejected = stats.rejectedTotal();
    r.qps = static_cast<double>(stats.completed) / span;
    r.goodput = static_cast<double>(stats.completedInDeadline) / span;
    r.p50Ms = s.p50Seconds * 1e3;
    r.p99Ms = s.p99Seconds * 1e3;
    r.p999Ms = s.p999Seconds * 1e3;
    r.meanMs = s.meanSeconds * 1e3;
    return r;
}

/**
 * The overload-resilience sweep: offered load at {1x, 2x, 4x} the
 * bucketed policy's measured capacity, resilient config vs a
 * no-shedding baseline, shared requests and arrival schedule.
 */
int
runOverloadSweep(InferenceEngine &engine, const BertConfig &config,
                 bool quick, const std::string &json_path)
{
    const BucketSpec buckets = BucketSpec::defaultSpec(config.maxPositions);

    // Calibrate capacity: per-request service time inside one full
    // batch at the mix's common bucket — the best case batching can
    // deliver, so "1x" is genuinely saturating.
    constexpr int kCalBatch = 8;
    const std::int64_t cal_len = quick ? 32 : 64;
    Rng calib(11);
    double t_batch = 0.0;
    {
        std::vector<PendingRequest> reqs;
        for (int i = 0; i < kCalBatch; ++i) {
            PendingRequest p;
            p.request = syntheticRequest(
                calib, static_cast<std::uint64_t>(i), cal_len,
                config.vocabSize);
            reqs.push_back(std::move(p));
        }
        Batch batch;
        batch.bucket = buckets.bucketFor(cal_len);
        batch.paddedLen = buckets.boundary(batch.bucket);
        batch.requests = std::move(reqs);
        std::vector<InferReply> replies;
        for (int r = 0; r < 4; ++r) {
            Stopwatch watch;
            engine.run(batch, replies);
            const double t = watch.elapsed();
            if (r == 1 || (r > 1 && t < t_batch))
                t_batch = t;
            replies.clear();
        }
    }
    const double capacity_qps = static_cast<double>(kCalBatch) / t_batch;
    // Deadline: three batch drains — met easily at 1x, hopeless for
    // the tail of an unshed queue at 4x. Keeping it tight means the
    // admission gate's completion estimate also bounds the accepted
    // tail latency, not just the accepted count.
    const std::int64_t deadline_us = std::max<std::int64_t>(
        10000, static_cast<std::int64_t>(3.0 * t_batch * 1e6));
    std::printf("bucketed capacity: %.1f qps (batch-%d service %.2f ms "
                "at bucket %lld); request deadline %.1f ms\n\n",
                capacity_qps, kCalBatch, t_batch * 1e3,
                static_cast<long long>(buckets.boundary(
                    buckets.bucketFor(cal_len))),
                static_cast<double>(deadline_us) * 1e-3);

    // Resilient: tight bounded queues, admission, shedding, ladder.
    ServeOptions resilient;
    resilient.maxBatch = 8;
    resilient.maxWaitUs = 2000;
    resilient.queueCap = 4;
    resilient.queuePolicy = QueuePolicy::RejectNew;
    resilient.degrade = 1;
    resilient.admission = true;
    resilient.shedExpired = true;
    resilient.defaultDeadlineUs = deadline_us;

    // Baseline: the pre-admission-control server — unbounded-ish
    // queue, no shedding, every accepted request computed even after
    // its deadline has passed.
    ServeOptions baseline = resilient;
    baseline.queueCap = 1 << 20;
    baseline.degrade = 0;
    baseline.admission = false;
    baseline.shedExpired = false;

    const std::vector<std::int64_t> length_mix = {16, 16, 24, 32, 48,
                                                  64, 64, 96};
    const int count = quick ? 24 : 192;
    const std::vector<double> load_multiples = {1.0, 2.0, 4.0};

    // Warm-up set: one full batch per distinct length in the mix, so
    // every bucket the measured traffic can hit has a service-time
    // EWMA before admission decisions start counting.
    std::vector<InferRequest> warmup;
    {
        Rng warm(0xabc);
        std::uint64_t id = 1'000'000;
        for (const std::int64_t len : {16, 24, 32, 48, 64, 96})
            for (int i = 0; i < 8; ++i)
                warmup.push_back(syntheticRequest(
                    warm, id++, len, config.vocabSize));
    }

    struct OverloadPoint {
        double multiple = 0.0;
        double offeredQps = 0.0;
        PolicyResult resilient;
        PolicyResult baseline;
    };
    std::vector<OverloadPoint> points;
    for (const double multiple : load_multiples) {
        OverloadPoint point;
        point.multiple = multiple;
        point.offeredQps = multiple * capacity_qps;

        Rng body(4321);
        Rng mix(8765);
        std::vector<InferRequest> requests;
        for (int i = 0; i < count; ++i) {
            const std::int64_t len = length_mix[static_cast<std::size_t>(
                mix.uniformInt(0,
                               static_cast<std::int64_t>(
                                   length_mix.size()) -
                                   1))];
            requests.push_back(
                syntheticRequest(body, static_cast<std::uint64_t>(i), len,
                                 config.vocabSize));
        }
        const std::vector<double> schedule =
            poissonSchedule(point.offeredQps, count, 0xfeed);

        point.resilient = runLoad(engine, buckets, resilient, requests,
                                  schedule, warmup);
        point.baseline = runLoad(engine, buckets, baseline, requests,
                                 schedule, warmup);
        points.push_back(point);
    }

    Table table("Serving overload: resilient (queueCap=4, admission + "
                "shedding + ladder) vs no-shedding baseline, " +
                std::to_string(count) + " Poisson requests per point");
    table.setHeader({"load", "offered qps", "policy", "qps", "goodput",
                     "p99 ms", "rejected"});
    char buf[64];
    for (const OverloadPoint &point : points) {
        for (int which = 0; which < 2; ++which) {
            const PolicyResult &r =
                which == 0 ? point.baseline : point.resilient;
            std::vector<std::string> row;
            std::snprintf(buf, sizeof(buf), "%.1fx", point.multiple);
            row.push_back(which == 0 ? buf : "");
            std::snprintf(buf, sizeof(buf), "%.1f", point.offeredQps);
            row.push_back(which == 0 ? buf : "");
            row.push_back(which == 0 ? "baseline" : "resilient");
            std::snprintf(buf, sizeof(buf), "%.1f", r.qps);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.goodput);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p99Ms);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(r.rejected));
            row.push_back(buf);
            table.addRow(row);
        }
    }
    std::printf("%s\n", table.render().c_str());

    const OverloadPoint &peak = points.back();
    const double goodput_ratio =
        peak.baseline.goodput > 0.0
            ? peak.resilient.goodput / peak.baseline.goodput
            : 0.0;
    std::printf("4x overload: resilient goodput %.1f/s vs baseline "
                "%.1f/s (%.2fx); accepted p99 %.1f ms vs %.1f ms\n",
                peak.resilient.goodput, peak.baseline.goodput,
                goodput_ratio, peak.resilient.p99Ms,
                peak.baseline.p99Ms);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_serving_overload\",\n");
        std::fprintf(
            f,
            "  \"config\": {\"layers\": %d, \"d_model\": %lld, "
            "\"max_positions\": %lld, \"count\": %d, "
            "\"capacity_qps\": %.2f, \"deadline_ms\": %.3f, "
            "\"queue_cap\": 4, \"quick\": %s},\n",
            config.numLayers, static_cast<long long>(config.dModel),
            static_cast<long long>(config.maxPositions), count,
            capacity_qps, static_cast<double>(deadline_us) * 1e-3,
            quick ? "true" : "false");
        std::fprintf(f, "  \"load_points\": [\n");
        for (std::size_t i = 0; i < points.size(); ++i) {
            const OverloadPoint &p = points[i];
            auto emit = [&](const char *name, const PolicyResult &r,
                            const char *tail) {
                std::fprintf(
                    f,
                    "     \"%s\": {\"qps\": %.2f, \"goodput\": %.2f, "
                    "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                    "\"p999_ms\": %.3f, \"completed\": %lld, "
                    "\"in_deadline\": %lld, \"rejected\": %lld}%s\n",
                    name, r.qps, r.goodput, r.p50Ms, r.p99Ms, r.p999Ms,
                    static_cast<long long>(r.completed),
                    static_cast<long long>(r.inDeadline),
                    static_cast<long long>(r.rejected), tail);
            };
            std::fprintf(
                f,
                "    {\"load_multiple\": %.2f, \"offered_qps\": %.2f,\n",
                p.multiple, p.offeredQps);
            emit("baseline", p.baseline, ",");
            emit("resilient", p.resilient, ",");
            std::fprintf(
                f, "     \"goodput_ratio\": %.3f}%s\n",
                p.baseline.goodput > 0.0
                    ? p.resilient.goodput / p.baseline.goodput
                    : 0.0,
                i + 1 < points.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    bool overload = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--overload") == 0)
            overload = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    // A serving-sized encoder: big enough that padding waste shows,
    // small enough that the sweep finishes on one CPU.
    BertConfig config;
    config.name = quick ? "bert-serve-quick" : "bert-serve-small";
    config.numLayers = 2;
    config.dModel = quick ? 64 : 128;
    config.numHeads = 4;
    config.dFf = 4 * config.dModel;
    config.vocabSize = 1024;
    config.maxPositions = quick ? 128 : 512;
    config.typeVocab = 2;
    config.batch = 1;
    config.seqLen = config.maxPositions;
    config.numClasses = 2;

    NnRuntime rt;
    BertClassifier model(config, &rt);
    Rng init(20260807);
    model.initialize(init);
    model.setTraining(false);
    ClassifierEngine engine(model, /*pad_id=*/3);

    if (overload)
        return runOverloadSweep(engine, config, quick, json_path);

    // Serving-like length mix: mostly short queries, a long tail —
    // the regime where pad-to-max throws away the most compute.
    std::vector<std::int64_t> length_mix = {16, 16, 24, 24,  32,  32,
                                            48, 48, 64, 96, 128, 128};
    if (!quick) {
        length_mix.push_back(256);
        length_mix.push_back(384);
    }
    const int count = quick ? 12 : 48;
    const std::vector<double> load_multiples =
        quick ? std::vector<double>{2.0}
              : std::vector<double>{0.5, 1.5, 3.0};

    // Calibrate the naive policy's capacity: one request padded to
    // the model maximum, batch 1 — its service time bounds what
    // pad-to-max serving can ever deliver.
    Rng calib(7);
    double t_naive = 0.0;
    {
        InferRequest probe = syntheticRequest(calib, 0, config.maxPositions,
                                              config.vocabSize);
        // Warm-up, then best-of-3.
        for (int r = 0; r < 4; ++r) {
            Stopwatch watch;
            (void)model.forwardLogitsEval(probe.tokenIds,
                                          probe.segmentIds, 1,
                                          config.maxPositions, {});
            const double t = watch.elapsed();
            if (r == 1 || (r > 1 && t < t_naive))
                t_naive = t;
        }
    }
    const double naive_capacity_qps = 1.0 / t_naive;
    std::printf("naive service time (pad to %lld, batch 1): %.1f ms "
                "=> capacity %.1f qps\n\n",
                static_cast<long long>(config.maxPositions),
                t_naive * 1e3, naive_capacity_qps);

    const BucketSpec naive_buckets({config.maxPositions});
    ServeOptions naive_options;
    naive_options.maxBatch = 1;
    naive_options.maxWaitUs = 0;

    const BucketSpec bucketed_buckets =
        BucketSpec::defaultSpec(config.maxPositions);
    ServeOptions bucketed_options;
    bucketed_options.maxBatch = 8;
    bucketed_options.maxWaitUs = 2000;

    // The legacy comparison completes every request (no shedding, no
    // admission, effectively unbounded queues) so its throughput
    // numbers stay comparable with earlier snapshots; goodput is
    // still reported against the default deadline. The --overload
    // sweep is where the resilience machinery is the subject.
    for (ServeOptions *opts : {&naive_options, &bucketed_options}) {
        opts->queueCap = 1 << 20;
        opts->degrade = 0;
        opts->admission = false;
        opts->shedExpired = false;
    }

    struct LoadPoint {
        double multiple = 0.0;
        double offeredQps = 0.0;
        PolicyResult naive;
        PolicyResult bucketed;
    };
    std::vector<LoadPoint> points;
    for (const double multiple : load_multiples) {
        LoadPoint point;
        point.multiple = multiple;
        point.offeredQps = multiple * naive_capacity_qps;

        // Same requests and same arrival schedule for both policies.
        Rng body(1234);
        Rng mix(5678);
        std::vector<InferRequest> requests;
        for (int i = 0; i < count; ++i) {
            const std::int64_t len = length_mix[static_cast<std::size_t>(
                mix.uniformInt(0,
                               static_cast<std::int64_t>(
                                   length_mix.size()) -
                                   1))];
            requests.push_back(
                syntheticRequest(body, static_cast<std::uint64_t>(i), len,
                                 config.vocabSize));
        }
        const std::vector<double> schedule =
            poissonSchedule(point.offeredQps, count, 0x5eed);

        point.naive = runLoad(engine, naive_buckets, naive_options,
                              requests, schedule);
        point.bucketed = runLoad(engine, bucketed_buckets,
                                 bucketed_options, requests, schedule);
        points.push_back(point);
    }

    Table table("Serving: naive pad-to-" +
                std::to_string(config.maxPositions) +
                " batch-1 vs bucketed+batched (maxBatch=8, "
                "maxWait=2ms), " +
                std::to_string(count) + " Poisson requests per point");
    table.setHeader({"load", "offered qps", "policy", "qps", "p50 ms",
                     "p99 ms", "p99.9 ms"});
    char buf[64];
    for (const LoadPoint &point : points) {
        for (int which = 0; which < 2; ++which) {
            const PolicyResult &r =
                which == 0 ? point.naive : point.bucketed;
            std::vector<std::string> row;
            std::snprintf(buf, sizeof(buf), "%.1fx", point.multiple);
            row.push_back(which == 0 ? buf : "");
            std::snprintf(buf, sizeof(buf), "%.1f", point.offeredQps);
            row.push_back(which == 0 ? buf : "");
            row.push_back(which == 0 ? "naive" : "bucketed");
            std::snprintf(buf, sizeof(buf), "%.1f", r.qps);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p50Ms);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p99Ms);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p999Ms);
            row.push_back(buf);
            table.addRow(row);
        }
    }
    std::printf("%s\n", table.render().c_str());

    const LoadPoint &peak = points.back();
    const double ratio = peak.bucketed.qps / peak.naive.qps;
    std::printf("peak-load throughput: bucketed %.1f qps vs naive %.1f "
                "qps (%.2fx) at p99 %.1f ms vs %.1f ms\n",
                peak.bucketed.qps, peak.naive.qps, ratio,
                peak.bucketed.p99Ms, peak.naive.p99Ms);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_serving\",\n");
        std::fprintf(
            f,
            "  \"config\": {\"layers\": %d, \"d_model\": %lld, "
            "\"max_positions\": %lld, \"count\": %d, "
            "\"naive_capacity_qps\": %.2f, \"max_batch\": 8, "
            "\"max_wait_us\": 2000, \"quick\": %s},\n",
            config.numLayers, static_cast<long long>(config.dModel),
            static_cast<long long>(config.maxPositions), count,
            naive_capacity_qps, quick ? "true" : "false");
        std::fprintf(f, "  \"load_points\": [\n");
        for (std::size_t i = 0; i < points.size(); ++i) {
            const LoadPoint &p = points[i];
            std::fprintf(
                f,
                "    {\"load_multiple\": %.2f, \"offered_qps\": %.2f,\n"
                "     \"naive\": {\"qps\": %.2f, \"goodput\": %.2f, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"p999_ms\": %.3f},\n"
                "     \"bucketed\": {\"qps\": %.2f, \"goodput\": %.2f, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"p999_ms\": %.3f},\n"
                "     \"throughput_ratio\": %.3f}%s\n",
                p.multiple, p.offeredQps, p.naive.qps, p.naive.goodput,
                p.naive.p50Ms, p.naive.p99Ms, p.naive.p999Ms,
                p.bucketed.qps, p.bucketed.goodput, p.bucketed.p50Ms,
                p.bucketed.p99Ms, p.bucketed.p999Ms,
                p.bucketed.qps / p.naive.qps,
                i + 1 < points.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
