/**
 * @file
 * Request-level serving bench: open-loop Poisson traffic against the
 * inference server under two policies — naive (every request padded
 * to the model maximum, batch size 1: the pad-everything baseline the
 * paper's input-size sweep argues against) and bucketed+batched
 * (sequence-length buckets from the Fig. 8 ladder plus dynamic
 * max-batch/max-wait coalescing). Reports achieved throughput and
 * p50/p99/p99.9 latency at several offered-load points, expressed as
 * multiples of the naive policy's measured capacity so the sweep is
 * machine-independent.
 *
 * Usage: bench_serving [--quick] [--json <path>]
 *   --quick shrinks the model and request counts for CI smoke runs.
 *   --json writes a machine-readable results file (see
 *   scripts/run_bench.sh, which snapshots it into results/).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/bertprof.h"
#include "serve/server.h"
#include "serve/traffic.h"

using namespace bertprof;

namespace {

struct PolicyResult {
    double qps = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double meanMs = 0.0;
};

/** Replay `schedule` open-loop against a fresh server; summarize. */
PolicyResult
runLoad(InferenceEngine &engine, const BucketSpec &buckets,
        const ServeOptions &options,
        const std::vector<InferRequest> &requests,
        const std::vector<double> &schedule)
{
    InferenceServer server(engine, buckets, options);
    std::vector<std::future<InferReply>> futures;
    futures.reserve(requests.size());
    const MonoTime start = monoNow();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        // Absolute schedule: submission times never depend on how
        // fast replies come back (open loop).
        std::this_thread::sleep_until(monoAddMicros(
            start, static_cast<std::int64_t>(schedule[i] * 1e6)));
        futures.push_back(server.submit(requests[i]));
    }
    for (auto &f : futures)
        f.wait();
    const double span = secondsBetween(start, monoNow());
    const LatencySummary s = server.latencySummary();
    PolicyResult r;
    r.qps = static_cast<double>(requests.size()) / span;
    r.p50Ms = s.p50Seconds * 1e3;
    r.p99Ms = s.p99Seconds * 1e3;
    r.p999Ms = s.p999Seconds * 1e3;
    r.meanMs = s.meanSeconds * 1e3;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    // A serving-sized encoder: big enough that padding waste shows,
    // small enough that the sweep finishes on one CPU.
    BertConfig config;
    config.name = quick ? "bert-serve-quick" : "bert-serve-small";
    config.numLayers = 2;
    config.dModel = quick ? 64 : 128;
    config.numHeads = 4;
    config.dFf = 4 * config.dModel;
    config.vocabSize = 1024;
    config.maxPositions = quick ? 128 : 512;
    config.typeVocab = 2;
    config.batch = 1;
    config.seqLen = config.maxPositions;
    config.numClasses = 2;

    NnRuntime rt;
    BertClassifier model(config, &rt);
    Rng init(20260807);
    model.initialize(init);
    model.setTraining(false);
    ClassifierEngine engine(model, /*pad_id=*/3);

    // Serving-like length mix: mostly short queries, a long tail —
    // the regime where pad-to-max throws away the most compute.
    std::vector<std::int64_t> length_mix = {16, 16, 24, 24,  32,  32,
                                            48, 48, 64, 96, 128, 128};
    if (!quick) {
        length_mix.push_back(256);
        length_mix.push_back(384);
    }
    const int count = quick ? 12 : 48;
    const std::vector<double> load_multiples =
        quick ? std::vector<double>{2.0}
              : std::vector<double>{0.5, 1.5, 3.0};

    // Calibrate the naive policy's capacity: one request padded to
    // the model maximum, batch 1 — its service time bounds what
    // pad-to-max serving can ever deliver.
    Rng calib(7);
    double t_naive = 0.0;
    {
        InferRequest probe = syntheticRequest(calib, 0, config.maxPositions,
                                              config.vocabSize);
        // Warm-up, then best-of-3.
        for (int r = 0; r < 4; ++r) {
            Stopwatch watch;
            (void)model.forwardLogitsEval(probe.tokenIds,
                                          probe.segmentIds, 1,
                                          config.maxPositions, {});
            const double t = watch.elapsed();
            if (r == 1 || (r > 1 && t < t_naive))
                t_naive = t;
        }
    }
    const double naive_capacity_qps = 1.0 / t_naive;
    std::printf("naive service time (pad to %lld, batch 1): %.1f ms "
                "=> capacity %.1f qps\n\n",
                static_cast<long long>(config.maxPositions),
                t_naive * 1e3, naive_capacity_qps);

    const BucketSpec naive_buckets({config.maxPositions});
    ServeOptions naive_options;
    naive_options.maxBatch = 1;
    naive_options.maxWaitUs = 0;

    const BucketSpec bucketed_buckets =
        BucketSpec::defaultSpec(config.maxPositions);
    ServeOptions bucketed_options;
    bucketed_options.maxBatch = 8;
    bucketed_options.maxWaitUs = 2000;

    struct LoadPoint {
        double multiple = 0.0;
        double offeredQps = 0.0;
        PolicyResult naive;
        PolicyResult bucketed;
    };
    std::vector<LoadPoint> points;
    for (const double multiple : load_multiples) {
        LoadPoint point;
        point.multiple = multiple;
        point.offeredQps = multiple * naive_capacity_qps;

        // Same requests and same arrival schedule for both policies.
        Rng body(1234);
        Rng mix(5678);
        std::vector<InferRequest> requests;
        for (int i = 0; i < count; ++i) {
            const std::int64_t len = length_mix[static_cast<std::size_t>(
                mix.uniformInt(0,
                               static_cast<std::int64_t>(
                                   length_mix.size()) -
                                   1))];
            requests.push_back(
                syntheticRequest(body, static_cast<std::uint64_t>(i), len,
                                 config.vocabSize));
        }
        const std::vector<double> schedule =
            poissonSchedule(point.offeredQps, count, 0x5eed);

        point.naive = runLoad(engine, naive_buckets, naive_options,
                              requests, schedule);
        point.bucketed = runLoad(engine, bucketed_buckets,
                                 bucketed_options, requests, schedule);
        points.push_back(point);
    }

    Table table("Serving: naive pad-to-" +
                std::to_string(config.maxPositions) +
                " batch-1 vs bucketed+batched (maxBatch=8, "
                "maxWait=2ms), " +
                std::to_string(count) + " Poisson requests per point");
    table.setHeader({"load", "offered qps", "policy", "qps", "p50 ms",
                     "p99 ms", "p99.9 ms"});
    char buf[64];
    for (const LoadPoint &point : points) {
        for (int which = 0; which < 2; ++which) {
            const PolicyResult &r =
                which == 0 ? point.naive : point.bucketed;
            std::vector<std::string> row;
            std::snprintf(buf, sizeof(buf), "%.1fx", point.multiple);
            row.push_back(which == 0 ? buf : "");
            std::snprintf(buf, sizeof(buf), "%.1f", point.offeredQps);
            row.push_back(which == 0 ? buf : "");
            row.push_back(which == 0 ? "naive" : "bucketed");
            std::snprintf(buf, sizeof(buf), "%.1f", r.qps);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p50Ms);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p99Ms);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.p999Ms);
            row.push_back(buf);
            table.addRow(row);
        }
    }
    std::printf("%s\n", table.render().c_str());

    const LoadPoint &peak = points.back();
    const double ratio = peak.bucketed.qps / peak.naive.qps;
    std::printf("peak-load throughput: bucketed %.1f qps vs naive %.1f "
                "qps (%.2fx) at p99 %.1f ms vs %.1f ms\n",
                peak.bucketed.qps, peak.naive.qps, ratio,
                peak.bucketed.p99Ms, peak.naive.p99Ms);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_serving\",\n");
        std::fprintf(
            f,
            "  \"config\": {\"layers\": %d, \"d_model\": %lld, "
            "\"max_positions\": %lld, \"count\": %d, "
            "\"naive_capacity_qps\": %.2f, \"max_batch\": 8, "
            "\"max_wait_us\": 2000, \"quick\": %s},\n",
            config.numLayers, static_cast<long long>(config.dModel),
            static_cast<long long>(config.maxPositions), count,
            naive_capacity_qps, quick ? "true" : "false");
        std::fprintf(f, "  \"load_points\": [\n");
        for (std::size_t i = 0; i < points.size(); ++i) {
            const LoadPoint &p = points[i];
            std::fprintf(
                f,
                "    {\"load_multiple\": %.2f, \"offered_qps\": %.2f,\n"
                "     \"naive\": {\"qps\": %.2f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"p999_ms\": %.3f},\n"
                "     \"bucketed\": {\"qps\": %.2f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"p999_ms\": %.3f},\n"
                "     \"throughput_ratio\": %.3f}%s\n",
                p.multiple, p.offeredQps, p.naive.qps, p.naive.p50Ms,
                p.naive.p99Ms, p.naive.p999Ms, p.bucketed.qps,
                p.bucketed.p50Ms, p.bucketed.p99Ms, p.bucketed.p999Ms,
                p.bucketed.qps / p.naive.qps,
                i + 1 < points.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
