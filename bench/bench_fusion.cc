/**
 * @file
 * Measured fused-vs-unfused encoder-layer performance on the CPU
 * substrate (ISSUE 8): eval forward through the eager fused path and
 * the graph executor, training forward+backward, closed-loop serving
 * throughput, and the arena planner's high-water mark against the
 * no-reuse footprint. Alongside each measured ratio the Fig. 12-style
 * analytical prediction is reported: the kernel-count and memory-
 * traffic ratios from the same runs' KernelStats (traffic ratio is
 * the roofline memory-bound speedup upper bound; GEMM-heavy spans are
 * compute-bound, so the measured ratio sits below it).
 *
 * Usage: bench_fusion [--quick] [--json <path>]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "core/bertprof.h"
#include "graph/encoder_exec.h"
#include "nn/encoder_layer.h"
#include "nn/graph_hook.h"
#include "runtime/config.h"
#include "serve/server.h"
#include "serve/traffic.h"
#include "util/stopwatch.h"

using namespace bertprof;

namespace {

struct Measurement {
    double ms = 0.0;
    std::int64_t kernels = 0;
    double bytes = 0.0;
};

/** Kernel count and KernelStats traffic from one profiled call. */
template <typename Fn>
Measurement
profileOnce(Profiler &prof, Fn &&fn)
{
    fn(); // warm caches, plans, thread pool
    prof.clear();
    fn(); // profiled rep
    Measurement m;
    m.kernels = static_cast<std::int64_t>(prof.records().size());
    for (const auto &rec : prof.records())
        m.bytes += static_cast<double>(rec.stats.bytesTotal());
    return m;
}

/** Per-rep wall times for several configurations, sampled round-robin
 * so host-level drift (frequency scaling, noisy neighbours on a
 * shared VM) lands on every configuration equally instead of biasing
 * whichever one happened to run last. Each entry of `configs` is
 * {enter-mode, body}; the median per-rep time is returned per config
 * — shared-host noise is strictly additive, so the median tracks the
 * undisturbed cost while a mean absorbs every preemption spike. */
using TimedConfig =
    std::pair<std::function<void()>, std::function<void()>>;

std::vector<double>
medianInterleaved(const std::vector<TimedConfig> &configs, int reps)
{
    std::vector<std::vector<double>> samples(configs.size());
    for (int r = 0; r < reps; ++r) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            configs[c].first();
            const MonoTime start = monoNow();
            configs[c].second();
            samples[c].push_back(secondsBetween(start, monoNow()) * 1e3);
        }
    }
    std::vector<double> medians(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::sort(samples[c].begin(), samples[c].end());
        medians[c] = samples[c][samples[c].size() / 2];
    }
    return medians;
}

double
serveQps(BertClassifier &clf, std::int64_t vocab, int count)
{
    ClassifierEngine engine(clf, /*pad_id=*/3);
    ServeOptions options;
    options.maxBatch = 8;
    options.maxWaitUs = 500;
    InferenceServer server(engine, BucketSpec({32, 64, 128}), options);
    Rng body(99);
    std::vector<std::future<InferReply>> futures;
    const MonoTime start = monoNow();
    for (int id = 0; id < count; ++id)
        futures.push_back(server.submit(syntheticRequest(
            body, static_cast<std::uint64_t>(id), 16 + (id % 5) * 24,
            vocab)));
    for (auto &f : futures)
        f.wait();
    return count / secondsBetween(start, monoNow());
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    const std::int64_t d_model = quick ? 128 : 256;
    const int heads = quick ? 4 : 8;
    const std::int64_t d_ff = 4 * d_model;
    const std::int64_t batch = quick ? 2 : 2;
    const std::int64_t seq = quick ? 64 : 256;
    const int reps = quick ? 5 : 30;

    Profiler prof;
    NnRuntime rt;
    rt.profiler = &prof;
    EncoderLayer layer("enc", d_model, heads, d_ff, &rt);
    Rng init(20260808);
    layer.initialize(init);

    Rng data(1);
    Tensor x(Shape({batch * seq, d_model}));
    x.fillNormal(data);
    Tensor mask(Shape({seq, seq}));

    auto eval_forward = [&]() { (void)layer.forward(x, mask, batch, seq); };

    // -- Eval forward: unfused / fused-eager / fused-graph --
    layer.setTraining(false);
    graph::EncoderExec *exec = graph::ensureEncoderGraphExecInstalled();
    exec->clearPlanCache();
    auto enter_unfused = [&]() { setFusionMode(FusionMode::Off); };
    auto enter_eager = [&]() {
        setFusionMode(FusionMode::On);
        installEncoderGraphExec(nullptr);
    };
    auto enter_graph = [&]() {
        setFusionMode(FusionMode::On);
        installEncoderGraphExec(exec);
    };

    enter_unfused();
    Measurement eval_unfused = profileOnce(prof, eval_forward);
    enter_eager();
    Measurement eval_eager = profileOnce(prof, eval_forward);
    enter_graph();
    Measurement eval_graph = profileOnce(prof, eval_forward);

    const std::vector<double> eval_ms = medianInterleaved(
        {{enter_unfused, eval_forward},
         {enter_eager, eval_forward},
         {enter_graph, eval_forward}},
        reps);
    eval_unfused.ms = eval_ms[0];
    eval_eager.ms = eval_ms[1];
    eval_graph.ms = eval_ms[2];
    const std::int64_t arena_peak = exec->arenaPeakBytes();
    const std::int64_t arena_sum = exec->plannedSumBytes();

    // -- Training forward+backward --
    layer.setTraining(true);
    rt.dropoutP = 0.1f;
    Tensor dout(x.shape());
    dout.fillNormal(data);
    auto train_step = [&]() {
        (void)layer.forward(x, mask, batch, seq);
        layer.zeroGrad();
        (void)layer.backward(dout);
    };
    setFusionMode(FusionMode::Off);
    Measurement train_unfused = profileOnce(prof, train_step);
    setFusionMode(FusionMode::On);
    Measurement train_fused = profileOnce(prof, train_step);
    const std::vector<double> train_ms = medianInterleaved(
        {{enter_unfused, train_step},
         {[&]() { setFusionMode(FusionMode::On); }, train_step}},
        reps);
    train_unfused.ms = train_ms[0];
    train_fused.ms = train_ms[1];
    layer.setTraining(false);

    // -- Serving throughput (closed loop) --
    BertConfig config;
    config.name = "bench-fusion-serve";
    config.numLayers = 2;
    config.dModel = d_model;
    config.numHeads = heads;
    config.dFf = d_ff;
    config.vocabSize = 1024;
    config.maxPositions = 128;
    config.typeVocab = 2;
    config.batch = 1;
    config.seqLen = config.maxPositions;
    config.numClasses = 2;
    NnRuntime serve_rt;
    BertClassifier clf(config, &serve_rt);
    Rng clf_init(7);
    clf.initialize(clf_init);
    clf.setTraining(false);
    const int serve_count = quick ? 16 : 64;
    setFusionMode(FusionMode::Off);
    const double qps_unfused = serveQps(clf, config.vocabSize, serve_count);
    setFusionMode(FusionMode::On);
    const double qps_fused = serveQps(clf, config.vocabSize, serve_count);
    clearFusionModeOverride();

    // -- Report --
    const double traffic_ratio = eval_unfused.bytes / eval_graph.bytes;
    Table table("Fused kernels + graph executor vs unfused oracle "
                "(d_model=" + std::to_string(d_model) +
                ", B=" + std::to_string(batch) +
                ", n=" + std::to_string(seq) + ")");
    table.setHeader({"Path", "Time", "Speedup", "Kernels", "Traffic"});
    auto row = [&](const char *label, const Measurement &m,
                   const Measurement &base) {
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.2fx",
                      base.ms / m.ms);
        table.addRow({label, formatSeconds(m.ms / 1e3), speedup,
                      std::to_string(m.kernels),
                      formatBytes(m.bytes)});
    };
    row("eval unfused", eval_unfused, eval_unfused);
    row("eval fused (eager)", eval_eager, eval_unfused);
    row("eval fused (graph+arena)", eval_graph, eval_unfused);
    row("train unfused", train_unfused, train_unfused);
    row("train fused", train_fused, train_unfused);
    std::printf("%s\n", table.render().c_str());

    std::printf(
        "Fig. 12 analytical prediction (from KernelStats): kernels "
        "%lldx, memory traffic %.2fx (= roofline memory-bound upper "
        "bound); measured eval speedup %.2fx.\n",
        static_cast<long long>(eval_unfused.kernels / eval_graph.kernels),
        traffic_ratio, eval_unfused.ms / eval_graph.ms);
    std::printf("arena: peak %s vs no-reuse sum %s (%.2fx reuse)\n",
                formatBytes(static_cast<double>(arena_peak)).c_str(),
                formatBytes(static_cast<double>(arena_sum)).c_str(),
                static_cast<double>(arena_sum) /
                    static_cast<double>(arena_peak));
    std::printf("serving: %.1f qps unfused -> %.1f qps fused (%.2fx)\n",
                qps_unfused, qps_fused, qps_fused / qps_unfused);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_fusion\",\n");
        std::fprintf(
            f,
            "  \"config\": {\"d_model\": %lld, \"heads\": %d, "
            "\"d_ff\": %lld, \"batch\": %lld, \"seq\": %lld, "
            "\"reps\": %d, \"quick\": %s},\n",
            static_cast<long long>(d_model), heads,
            static_cast<long long>(d_ff), static_cast<long long>(batch),
            static_cast<long long>(seq), reps, quick ? "true" : "false");
        std::fprintf(
            f,
            "  \"eval\": {\"unfused_ms\": %.4f, \"fused_eager_ms\": "
            "%.4f, \"fused_graph_ms\": %.4f, \"speedup_eager\": %.3f, "
            "\"speedup_graph\": %.3f,\n"
            "    \"kernels_unfused\": %lld, \"kernels_fused\": %lld, "
            "\"traffic_unfused_bytes\": %.0f, \"traffic_fused_bytes\": "
            "%.0f,\n"
            "    \"analytical_traffic_ratio\": %.3f, "
            "\"analytical_kernel_ratio\": %.3f},\n",
            eval_unfused.ms, eval_eager.ms, eval_graph.ms,
            eval_unfused.ms / eval_eager.ms,
            eval_unfused.ms / eval_graph.ms,
            static_cast<long long>(eval_unfused.kernels),
            static_cast<long long>(eval_graph.kernels),
            eval_unfused.bytes, eval_graph.bytes, traffic_ratio,
            static_cast<double>(eval_unfused.kernels) /
                static_cast<double>(eval_graph.kernels));
        std::fprintf(
            f,
            "  \"train\": {\"unfused_ms\": %.4f, \"fused_ms\": %.4f, "
            "\"speedup\": %.3f, \"kernels_unfused\": %lld, "
            "\"kernels_fused\": %lld},\n",
            train_unfused.ms, train_fused.ms,
            train_unfused.ms / train_fused.ms,
            static_cast<long long>(train_unfused.kernels),
            static_cast<long long>(train_fused.kernels));
        std::fprintf(
            f,
            "  \"arena\": {\"peak_bytes\": %lld, \"sum_bytes\": %lld, "
            "\"reuse_ratio\": %.3f},\n",
            static_cast<long long>(arena_peak),
            static_cast<long long>(arena_sum),
            static_cast<double>(arena_sum) /
                static_cast<double>(arena_peak));
        std::fprintf(
            f,
            "  \"serving\": {\"unfused_qps\": %.2f, \"fused_qps\": "
            "%.2f, \"speedup\": %.3f}\n}\n",
            qps_unfused, qps_fused, qps_fused / qps_unfused);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
