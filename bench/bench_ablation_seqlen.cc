/**
 * @file
 * Ablation: input-sequence-length heterogeneity. Real NLP corpora
 * have variable-length sequences (the reason the paper's profiling
 * methodology, via SeqPoint [67], needs representative iterations).
 * This study (a) sweeps n finely to expose the quadratic attention
 * cost, and (b) compares padding every sequence to n_max against
 * length-bucketed batching for a synthetic corpus-like length
 * distribution.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());

    // (a) Fine n sweep at a fixed token budget per iteration.
    Table sweep("Sequence-length sweep at ~4096 tokens per iteration "
                "(BERT-Large, FP32)");
    sweep.setHeader({"n", "B", "Iter time", "Attn ops", "us per token"});
    CsvWriter csv;
    csv.setHeader({"n", "batch", "seconds", "attn_share"});
    for (std::int64_t n : {32, 64, 128, 256, 512}) {
        BertConfig config = bertLarge();
        config.seqLen = n;
        config.batch = std::max<std::int64_t>(1, 4096 / n);
        config.maxPredictions = std::max<std::int64_t>(1, n * 15 / 100);
        const auto result = characterizer.run(config);
        const double attn = result.subLayerShare("Attn B-GEMM") +
                            result.subLayerShare("Scale+Mask+DR+SM");
        char per_token[32];
        std::snprintf(per_token, sizeof(per_token), "%.2f",
                      result.totalSeconds * 1e6 /
                          static_cast<double>(config.tokens()));
        sweep.addRow({std::to_string(n), std::to_string(config.batch),
                      formatSeconds(result.totalSeconds),
                      formatPercent(attn), per_token});
        csv.addRow({std::to_string(n), std::to_string(config.batch),
                    std::to_string(result.totalSeconds),
                    std::to_string(attn)});
    }
    std::printf("%s\n", sweep.render().c_str());
    csv.writeFile("seqlen_sweep.csv");

    // (b) Padded vs bucketed batching over a skewed length
    // distribution (most sequences are short; a long tail reaches
    // n_max — typical of Wikipedia sentence pairs).
    Rng rng(2024);
    std::map<std::int64_t, std::int64_t> bucket_counts;
    const std::int64_t corpus = 16384;
    std::int64_t total_tokens = 0;
    for (std::int64_t i = 0; i < corpus; ++i) {
        const double raw = std::exp(rng.normal(4.2, 0.7));
        const std::int64_t len = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(raw), 16, 512);
        total_tokens += len;
        // Buckets at powers of two up to 512.
        std::int64_t bucket = 32;
        while (bucket < len)
            bucket *= 2;
        ++bucket_counts[bucket];
    }

    auto iteration_seconds = [&](std::int64_t n, std::int64_t batch) {
        BertConfig config = bertLarge();
        config.seqLen = n;
        config.batch = batch;
        config.maxPredictions = std::max<std::int64_t>(1, n * 15 / 100);
        return characterizer.run(config).totalSeconds;
    };

    // Strategy A: pad everything to 512, B=8 (4096 tokens/iter).
    const Seconds padded_iter = iteration_seconds(512, 8);
    const double padded_iters =
        std::ceil(static_cast<double>(corpus) / 8.0);
    const Seconds padded_total = padded_iters * padded_iter;

    // Strategy B: per-bucket batches holding ~4096 padded tokens.
    Seconds bucketed_total = 0.0;
    Table buckets("Length-bucketed batching (4096 padded tokens per "
                  "iteration)");
    buckets.setHeader({"Bucket n", "Sequences", "B", "Iterations",
                       "Time"});
    for (const auto &[bucket, count] : bucket_counts) {
        const std::int64_t batch =
            std::max<std::int64_t>(1, 4096 / bucket);
        const double iters = std::ceil(static_cast<double>(count) /
                                       static_cast<double>(batch));
        const Seconds iter_s = iteration_seconds(bucket, batch);
        bucketed_total += iters * iter_s;
        buckets.addRow({std::to_string(bucket), std::to_string(count),
                        std::to_string(batch),
                        std::to_string(static_cast<long long>(iters)),
                        formatSeconds(iters * iter_s)});
    }
    std::printf("%s\n", buckets.render().c_str());
    std::printf("Corpus: %lld sequences, %lld real tokens (mean length "
                "%.0f).\n",
                static_cast<long long>(corpus),
                static_cast<long long>(total_tokens),
                static_cast<double>(total_tokens) / corpus);
    std::printf("Pad-to-512 epoch: %s | bucketed epoch: %s | bucketing "
                "speedup: %.2fx\n",
                formatSeconds(padded_total).c_str(),
                formatSeconds(bucketed_total).c_str(),
                padded_total / bucketed_total);
    std::printf("The quadratic attention terms make padding waste "
                "super-linear in n — the heterogeneity SeqPoint [67] "
                "exists to handle.\n");
    return 0;
}
