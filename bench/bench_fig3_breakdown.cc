/**
 * @file
 * Reproduces Fig. 3 of the paper: high-level runtime breakdown of a
 * BERT-Large pre-training iteration (Embedding / Transformer / Output
 * / LAMB optimizer) across phases, mini-batch sizes, and precisions.
 *
 * Paper reference points: Transformer layers 68-85%; LAMB second
 * contributor, 7-10% at Ph1-B32-FP32, up to 25% at small token
 * counts, 16-19% with mixed precision; output layer 3-7%; embedding
 * negligible.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());
    const std::vector<std::string> scopes = {
        "Transformer", "Optimizer", "Output", "Embedding"};

    struct Config {
        const char *label;
        BertConfig config;
    };
    std::vector<Config> configs;
    {
        BertConfig c = withPhase1(bertLarge(), 32);
        configs.push_back({"Ph1-B32-FP32", c});
    }
    {
        BertConfig c = withPhase1(bertLarge(), 4);
        configs.push_back({"Ph1-B4-FP32", c});
    }
    {
        BertConfig c = withPhase2(bertLarge(), 4);
        configs.push_back({"Ph2-B4-FP32", c});
    }
    {
        BertConfig c = withPhase1(bertLarge(), 32);
        c.precision = Precision::Mixed;
        configs.push_back({"Ph1-B32-FP16", c});
    }
    {
        BertConfig c = withPhase2(bertLarge(), 4);
        c.precision = Precision::Mixed;
        configs.push_back({"Ph2-B4-FP16", c});
    }

    Table table("Fig. 3 — runtime breakdown of BERT-Large pre-training");
    table.setHeader({"Config", "Transformer", "LAMB", "Output",
                     "Embedding", "Iter time", "Kernels"});
    CsvWriter csv;
    csv.setHeader({"config", "transformer", "lamb", "output", "embedding",
                   "seconds"});

    for (const auto &[label, config] : configs) {
        const auto result = characterizer.run(config);
        table.addRow({label,
                      formatPercent(result.scopeShare("Transformer")),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatPercent(result.scopeShare("Output")),
                      formatPercent(result.scopeShare("Embedding")),
                      formatSeconds(result.totalSeconds),
                      std::to_string(result.kernelCount)});
        csv.addRow({label,
                    std::to_string(result.scopeShare("Transformer")),
                    std::to_string(result.scopeShare("Optimizer")),
                    std::to_string(result.scopeShare("Output")),
                    std::to_string(result.scopeShare("Embedding")),
                    std::to_string(result.totalSeconds)});
    }

    // Output-layer implementation sensitivity: computing MLM logits
    // densely over every position (as several production stacks do)
    // instead of gathering the masked ~15% puts the output layer in
    // the paper's 3-7% band.
    {
        TraceOptions dense;
        dense.denseMlmLogits = true;
        const auto result =
            characterizer.run(withPhase1(bertLarge(), 32), dense);
        table.addSeparator();
        table.addRow({"Ph1-B32-FP32 (dense MLM)",
                      formatPercent(result.scopeShare("Transformer")),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatPercent(result.scopeShare("Output")),
                      formatPercent(result.scopeShare("Embedding")),
                      formatSeconds(result.totalSeconds),
                      std::to_string(result.kernelCount)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Paper: Transformer 68-85%%; LAMB 7-10%% (Ph1-B32-FP32), "
                "~25%% (B4), 16-19%% (MP); Output 3-7%%; Embedding "
                "negligible. The dense-MLM row shows the output-layer "
                "implementation choice that closes our main "
                "divergence.\n");
    csv.writeFile("fig3_breakdown.csv");
    return 0;
}
