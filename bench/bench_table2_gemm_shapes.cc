/**
 * @file
 * Regenerates Table 2b: the architecture-agnostic GEMM shapes of
 * every important BERT sub-layer for FWD, BWD-activation-gradient,
 * and BWD-weight-gradient, directly from the kernel trace. The trace
 * builder is the source of truth, so this table doubles as a check
 * that the emitted GEMMs match the paper's.
 */

#include <cstdio>
#include <map>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    const BertConfig config = withPhase1(bertLarge(), 32);
    BertTraceBuilder builder(config);
    const OpTrace trace = builder.buildIteration();

    // Collect the layer-0 GEMMs by sub-layer and phase.
    Table table("Table 2b — BERT GEMM shapes (M x N x K, [batch]); "
                "d_model=" + std::to_string(config.dModel) +
                ", n*B=" + std::to_string(config.tokens()) +
                ", d_ff=" + std::to_string(config.dFf));
    table.setHeader({"Kernel", "Phase", "Dims (tA,tB,M,N,K,[b])",
                     "FLOPs"});
    for (const auto &op : trace.ops) {
        if (op.layerIndex != 0)
            continue;
        if (op.kind != OpKind::Gemm && op.kind != OpKind::BatchedGemm)
            continue;
        table.addRow({op.name, phaseName(op.phase), op.gemm.label(),
                      formatFlops(static_cast<double>(op.stats.flops))});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Paper Table 2b (for the same parameters):\n"
                "  Linear      FWD %lldx%lldx%lld | BWD-act same | "
                "BWD-wgt %lldx%lldx%lld\n"
                "  Attn Score  FWD %lldx%lldx%lld [%lld]\n"
                "  Attn O/p    FWD %lldx%lldx%lld [%lld]\n"
                "  FC-1        FWD %lldx%lldx%lld\n"
                "  FC-2        FWD %lldx%lldx%lld\n",
                static_cast<long long>(config.dModel),
                static_cast<long long>(config.tokens()),
                static_cast<long long>(config.dModel),
                static_cast<long long>(config.dModel),
                static_cast<long long>(config.dModel),
                static_cast<long long>(config.tokens()),
                static_cast<long long>(config.seqLen),
                static_cast<long long>(config.seqLen),
                static_cast<long long>(config.headDim()),
                static_cast<long long>(config.batch * config.numHeads),
                static_cast<long long>(config.headDim()),
                static_cast<long long>(config.seqLen),
                static_cast<long long>(config.seqLen),
                static_cast<long long>(config.batch * config.numHeads),
                static_cast<long long>(config.dFf),
                static_cast<long long>(config.tokens()),
                static_cast<long long>(config.dModel),
                static_cast<long long>(config.dModel),
                static_cast<long long>(config.tokens()),
                static_cast<long long>(config.dFf));
    return 0;
}
