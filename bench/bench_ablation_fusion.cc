/**
 * @file
 * Ablation (DESIGN.md): stacking the software optimizations of
 * Sec. 6.1 — fused GeLU, fused Scale+Mask+DR+SM, fused DR+RC+LN,
 * fused Q/K/V GEMM, and multi-tensor optimizer — on top of the
 * baseline kernel mapping, for FP32 and mixed precision. Shows how
 * much of BERT's memory-bound time software alone can recover, and
 * that the optimizer's traffic is the piece fusion cannot touch
 * (motivating the paper's NMC proposal).
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());

    struct Step {
        const char *label;
        TraceOptions options;
    };
    std::vector<Step> steps;
    TraceOptions opts;
    steps.push_back({"baseline (paper's mapping)", opts});
    opts.fuseGelu = true;
    steps.push_back({"+ fused GeLU", opts});
    opts.fuseScaleMaskDrSm = true;
    steps.push_back({"+ fused Scale+Mask+DR+SM", opts});
    opts.fuseDrRcLn = true;
    steps.push_back({"+ fused DR+RC+LN", opts});
    opts.fuseQkvGemm = true;
    steps.push_back({"+ fused QKV GEMM", opts});
    opts.optimizerFusion = OptimizerFusion::MultiTensor;
    steps.push_back({"+ multi-tensor LAMB", opts});

    for (Precision precision : {Precision::FP32, Precision::Mixed}) {
        BertConfig config = withPhase1(bertLarge(), 32);
        config.precision = precision;
        Table table(std::string("Fusion stacking ablation (") +
                    config.tag() + ")");
        table.setHeader({"Variant", "Iter time", "Speedup vs base",
                         "Kernels", "LAMB share", "GEMM share"});
        double base_time = 0.0;
        for (const auto &step : steps) {
            const auto result = characterizer.run(config, step.options);
            if (base_time == 0.0)
                base_time = result.totalSeconds;
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "%.2fx",
                          base_time / result.totalSeconds);
            table.addRow({step.label,
                          formatSeconds(result.totalSeconds), speedup,
                          std::to_string(result.kernelCount),
                          formatPercent(result.scopeShare("Optimizer")),
                          formatPercent(result.gemmShare())});
        }
        std::printf("%s\n", table.render().c_str());
    }

    std::printf("Reading guide: fusing the EW groups buys the most in "
                "MP (their share is larger, Takeaway 9); the optimizer "
                "share barely moves under multi-tensor fusion because "
                "its traffic is irreducible (Sec. 6.1.1) — hence NMC "
                "(Sec. 6.2.1).\n");
    return 0;
}
