/**
 * @file
 * Reproduces Fig. 12b: fusing the three independent attention linear
 * GEMMs (Q/K/V share the same input matrix) into one GEMM with
 * concatenated weights, for forward and backward-gradient GEMMs
 * across token counts.
 *
 * Paper reference points: fusion improves performance by up to ~62%
 * by reusing the common input and increasing parallelism; gains are
 * larger when the input matrices are small (fewer tokens / smaller
 * hidden dim).
 */

#include <cstdio>

#include "core/bertprof.h"
#include "ops/elementwise.h"
#include "ops/fused.h"
#include "ops/gemm.h"
#include "ops/reshape.h"
#include "util/stopwatch.h"

using namespace bertprof;

namespace {

/** Build the Q/K/V projection GEMM op (serial or fused). */
OpDesc
linearGemm(std::int64_t d_model, std::int64_t tokens, bool fused,
           Phase phase)
{
    OpDesc op;
    op.name = fused ? "qkv.fused" : "qkv.single";
    op.kind = OpKind::Gemm;
    op.phase = phase;
    op.scope = LayerScope::Transformer;
    op.sub = SubLayer::AttnLinear;
    const std::int64_t m = fused ? 3 * d_model : d_model;
    if (phase == Phase::Fwd) {
        op.gemm = {false, true, m, tokens, d_model, 1};
    } else {
        // Weight-gradient GEMM: dW = dY^T X.
        op.gemm = {true, false, m, d_model, tokens, 1};
    }
    op.stats = gemmStats(op.gemm.m, op.gemm.n, op.gemm.k);
    return op;
}

} // namespace

int
main()
{
    const DeviceSpec spec = mi100();
    KernelCostModel cost(spec);
    const std::int64_t d_model = 1024;

    Table table("Fig. 12b — fusing the 3 attention linear GEMMs "
                "(d_model=1024, FP32): serial 3S vs fused 3F");
    table.setHeader({"Tokens (n*B)", "FWD 3S", "FWD 3F", "FWD speedup",
                     "WGRAD 3S", "WGRAD 3F", "WGRAD speedup"});

    for (std::int64_t tokens : {256, 512, 1024, 2048, 4096, 8192}) {
        std::vector<std::string> row;
        row.push_back(std::to_string(tokens));
        for (Phase phase : {Phase::Fwd, Phase::Bwd}) {
            const OpDesc single =
                linearGemm(d_model, tokens, false, phase);
            const OpDesc fused = linearGemm(d_model, tokens, true, phase);
            const Seconds serial3 = 3.0 * cost.evaluate(single).total();
            const Seconds fused1 = cost.evaluate(fused).total();
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "+%.0f%%",
                          100.0 * (serial3 / fused1 - 1.0));
            row.push_back(formatSeconds(serial3));
            row.push_back(formatSeconds(fused1));
            row.push_back(speedup);
        }
        table.addRow(row);
    }

    std::printf("%s\n", table.render().c_str());

    // Hidden-dimension sweep at a fixed token count: gains are also
    // larger for smaller d_model ("impact is higher when the input
    // matrices are small — smaller token count or hidden dimension").
    Table dims_table("Fusion gain vs hidden dim (2048 tokens, FWD)");
    dims_table.setHeader({"d_model", "3S", "3F", "Speedup"});
    for (std::int64_t d : {256, 512, 1024, 2048}) {
        OpDesc single;
        single.kind = OpKind::Gemm;
        single.gemm = {false, true, d, 2048, d, 1};
        single.stats = gemmStats(d, 2048, d);
        OpDesc fused;
        fused.kind = OpKind::Gemm;
        fused.gemm = {false, true, 3 * d, 2048, d, 1};
        fused.stats = gemmStats(3 * d, 2048, d);
        const Seconds serial3 = 3.0 * cost.evaluate(single).total();
        const Seconds fused1 = cost.evaluate(fused).total();
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "+%.0f%%",
                      100.0 * (serial3 / fused1 - 1.0));
        dims_table.addRow({std::to_string(d), formatSeconds(serial3),
                           formatSeconds(fused1), speedup});
    }
    std::printf("%s\n", dims_table.render().c_str());

    // Real-execution cross-check on the CPU substrate: the fused
    // packed-QKV kernel (ops/fused.h — one [T,3H] GEMM + bias/split
    // epilogue) vs three separate GEMM+bias+splitHeads chains,
    // measured across token counts (measured vs the analytical model
    // above).
    {
        const std::int64_t d = 256;
        const std::int64_t heads = 8;
        Table measured("Measured QKV fusion on the CPU substrate "
                       "(d_model=256, h=8)");
        measured.setHeader({"Tokens", "3 serial", "fused", "Speedup"});
        for (std::int64_t tokens : {256, 512, 1024, 2048}) {
            const std::int64_t batch = tokens / 128, seq = 128;
            Rng rng(29);
            Tensor x(Shape({tokens, d}));
            x.fillNormal(rng);
            Tensor w[3] = {Tensor(Shape({d, d})), Tensor(Shape({d, d})),
                           Tensor(Shape({d, d}))};
            Tensor b[3] = {Tensor(Shape({d})), Tensor(Shape({d})),
                           Tensor(Shape({d}))};
            for (int i = 0; i < 3; ++i) {
                w[i].fillNormal(rng);
                b[i].fillNormal(rng);
            }
            const Shape split(Shape({batch * heads, seq, d / heads}));
            Tensor q3d(split), k3d(split), v3d(split);
            const int reps = 10;
            Seconds serial_s = 0.0, fused_s = 0.0;
            {
                Stopwatch watch;
                for (int r = 0; r < reps; ++r) {
                    Tensor proj(Shape({tokens, d}));
                    gemm(x, w[0], proj, false, true);
                    biasForward(proj, b[0], proj);
                    splitHeads(proj, batch, seq, heads, q3d);
                    gemm(x, w[1], proj, false, true);
                    biasForward(proj, b[1], proj);
                    splitHeads(proj, batch, seq, heads, k3d);
                    gemm(x, w[2], proj, false, true);
                    biasForward(proj, b[2], proj);
                    splitHeads(proj, batch, seq, heads, v3d);
                }
                serial_s = watch.elapsed() / reps;
            }
            {
                Stopwatch watch;
                for (int r = 0; r < reps; ++r)
                    fusedQkvForward(x, w[0], w[1], w[2], b[0], b[1],
                                    b[2], batch, seq, heads, q3d, k3d,
                                    v3d);
                fused_s = watch.elapsed() / reps;
            }
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "%+.0f%%",
                          100.0 * (serial_s / fused_s - 1.0));
            measured.addRow({std::to_string(tokens),
                             formatSeconds(serial_s),
                             formatSeconds(fused_s), speedup});
        }
        std::printf("%s\n", measured.render().c_str());
    }

    std::printf("Paper: fusion improves performance by up to 62%%, more "
                "at small token counts (better CU utilization + the "
                "shared input matrix is read once).\n");
    return 0;
}
