/**
 * @file
 * Ablation (DESIGN.md / Sec. 5): sensitivity of the distributed
 * profiles to the communication model — AllReduce algorithm (the
 * paper's simple bytes/bandwidth estimate vs Ring AllReduce) and link
 * bandwidth (PCIe-4-like vs slower/faster fabrics). Confirms the
 * paper's claim that its takeaways are robust to non-homogeneous
 * networks: the *trends* (D2 hides communication; TS cost grows with
 * device count) survive every setting.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    const BertConfig dp_config = withPhase1(bertLarge(), 16);
    const BertConfig ts_config = withPhase1(bertLarge(), 64);

    Table table("Communication-model sensitivity (BERT-Large, FP32)");
    table.setHeader({"Link", "Algo", "D1 comm share", "D2 comm share",
                     "T2 (8-way) comm share"});

    for (double link_gbps : {16.0, 32.0, 64.0}) {
        for (AllReduceAlgo algo :
             {AllReduceAlgo::Simple, AllReduceAlgo::Ring}) {
            DeviceSpec spec = mi100();
            spec.linkBandwidth = link_gbps * 1e9;
            const CommModel comm(spec, algo);
            DataParallelModel dp(spec, comm);
            TensorSlicingModel ts(spec, comm);

            const auto d1 = dp.evaluate(dp_config, 128, false);
            const auto d2 = dp.evaluate(dp_config, 128, true);
            const auto t2 = ts.evaluate(ts_config, 8);
            char link[32];
            std::snprintf(link, sizeof(link), "%.0f GB/s", link_gbps);
            table.addRow(
                {link,
                 algo == AllReduceAlgo::Simple ? "simple" : "ring",
                 formatPercent(d1.exposedCommSeconds /
                               d1.totalSeconds()),
                 formatPercent(d2.exposedCommSeconds /
                               d2.totalSeconds()),
                 formatPercent(t2.exposedCommSeconds /
                               t2.timed.totalSeconds())});
        }
    }
    std::printf("%s\n", table.render().c_str());

    // Non-homogeneous (two-level) networks: Sec. 5.2's robustness
    // argument — the slow hop bottlenecks absolute cost, but the
    // growth-with-devices trend is unchanged.
    Table hier_table("Hierarchical network (fast intra-node 200 GB/s, "
                     "slow inter-node links), BERT-Large gradients");
    hier_table.setHeader({"Inter-node link", "AllReduce 8 dev",
                          "AllReduce 32 dev", "AllReduce 128 dev"});
    const std::int64_t grad_bytes =
        withPhase1(bertLarge(), 16).parameterCount() * 4;
    for (double inter_gbps : {12.5, 25.0, 50.0}) {
        HierarchicalCommModel hier(200e9, inter_gbps * 1e9, 8);
        char link[32];
        std::snprintf(link, sizeof(link), "%.1f GB/s", inter_gbps);
        hier_table.addRow(
            {link, formatSeconds(hier.allReduceTime(grad_bytes, 8)),
             formatSeconds(hier.allReduceTime(grad_bytes, 32)),
             formatSeconds(hier.allReduceTime(grad_bytes, 128))});
    }
    std::printf("%s\n", hier_table.render().c_str());
    std::printf("Trends hold everywhere: D2 << D1, 8-way TS pays the "
                "largest share, and hierarchical costs still grow with "
                "device count — exactly Sec. 5.2's robustness "
                "argument.\n");
    return 0;
}
