/**
 * @file
 * Reproduces Fig. 9: impact of Transformer layer size. C1 halves
 * BERT-Large's widths, C2 is BERT-Large, C3 doubles them
 * (Megatron-LM-like). Also sweeps layer count N to show the linear
 * scaling of Obs. 4.
 *
 * Paper reference points: the share of linear+FC GEMMs and of LAMB
 * grows with layer width (both scale quadratically with d_model while
 * other ops scale linearly); LAMB reaches ~34% for C3; FC grows
 * relative to attention.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());

    Table table("Fig. 9 — layer-size scaling (Ph1, B=16, FP32)");
    table.setHeader({"Config", "d_model", "Params", "GEMM share", "LAMB",
                     "Linear+FC", "Attn ops", "DR+RC+LN", "Iter time"});

    auto addRow = [&](BertConfig config) {
        config = withPhase1(std::move(config), 16);
        const auto result = characterizer.run(config);
        const double linear_fc = result.subLayerShare("Attn Linear") +
                                 result.subLayerShare("FC GEMM");
        const double attn_ops =
            result.subLayerShare("Attn B-GEMM") +
            result.subLayerShare("Scale+Mask+DR+SM");
        table.addRow({config.name,
                      std::to_string(config.dModel),
                      formatFlops(static_cast<double>(
                                      config.parameterCount()))
                          .substr(0, 8),
                      formatPercent(result.gemmShare()),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatPercent(linear_fc), formatPercent(attn_ops),
                      formatPercent(result.subLayerShare("DR+RC+LN")),
                      formatSeconds(result.totalSeconds)});
    };

    addRow(scalingC1());
    addRow(scalingC2());
    addRow(scalingC3());

    std::printf("%s\n", table.render().c_str());

    // Layer-count sweep (Obs. 4: linear scaling, stable breakdown).
    Table depth("Layer-count sweep (BERT-Large widths, Ph1-B16-FP32)");
    depth.setHeader({"N", "Iter time", "Transformer", "LAMB",
                     "Time/layer"});
    for (int n_layers : {12, 24, 48}) {
        BertConfig config = withPhase1(bertLarge(), 16);
        config.numLayers = n_layers;
        const auto result = characterizer.run(config);
        depth.addRow({std::to_string(n_layers),
                      formatSeconds(result.totalSeconds),
                      formatPercent(result.scopeShare("Transformer")),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatSeconds(result.totalSeconds / n_layers)});
    }
    std::printf("%s\n", depth.render().c_str());

    // Beyond the paper: a Megatron-8B-class future model, with the
    // footprint showing why it cannot train on one 32 GiB device
    // (the Sec. 2.5 motivation for model parallelism).
    {
        BertConfig mega = bertLarge();
        mega.name = "megatron-8B-like";
        mega.numLayers = 72;
        mega.dModel = 3072;
        mega.numHeads = 24;
        mega.dFf = 4 * mega.dModel;
        mega.maxPositions = 1024;
        mega = withPhase1(std::move(mega), 4);
        const auto result = characterizer.run(mega);
        const auto footprint = trainingFootprint(mega);
        std::printf("Future-scale check (%s, %lld params): LAMB share "
                    "%s, GEMM share %s, footprint %s (32 GiB device: "
                    "%s).\n",
                    mega.name.c_str(),
                    static_cast<long long>(mega.parameterCount()),
                    formatPercent(result.scopeShare("Optimizer")).c_str(),
                    formatPercent(result.gemmShare()).c_str(),
                    formatBytes(static_cast<double>(footprint.total()))
                        .c_str(),
                    footprint.total() > 32LL * 1024 * 1024 * 1024
                        ? "does NOT fit -> model parallelism required"
                        : "fits");
    }
    std::printf("Paper: GEMM and LAMB shares grow with layer width "
                "(quadratic scaling); LAMB ~34%% for C3. Layer count "
                "scales runtime linearly with a stable breakdown.\n");
    return 0;
}
