/**
 * @file
 * Google-benchmark microbenchmarks of the executable CPU substrate:
 * the individual kernels (GEMM, softmax, LayerNorm, GeLU, dropout,
 * LAMB step) and a full tiny-BERT training iteration. These are real
 * measured times (the repo's equivalent of the paper's rocProf runs,
 * scaled down to CPU-tractable sizes).
 */

#include <benchmark/benchmark.h>

#include "core/bertprof.h"
#include "ops/activation.h"
#include "ops/gemm.h"
#include "ops/layernorm.h"
#include "ops/softmax.h"

using namespace bertprof;

namespace {

/** A CPU-tractable BERT configuration for real-execution runs. */
BertConfig
tinyConfig()
{
    BertConfig config;
    config.name = "bert-tiny";
    config.numLayers = 2;
    config.dModel = 64;
    config.numHeads = 4;
    config.dFf = 256;
    config.vocabSize = 512;
    config.maxPositions = 64;
    config.batch = 2;
    config.seqLen = 32;
    config.maxPredictions = 4;
    return config;
}

void
BM_Gemm(benchmark::State &state)
{
    const std::int64_t dim = state.range(0);
    Rng rng;
    Tensor a(Shape({dim, dim})), b(Shape({dim, dim})), c(Shape({dim, dim}));
    a.fillNormal(rng);
    b.fillNormal(rng);
    for (auto _ : state) {
        gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * dim * dim * dim);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_BatchedGemmAttentionScore(benchmark::State &state)
{
    // The attention-score shape: n x n x d/h over B*h groups.
    const std::int64_t n = 32, dh = 16, bh = 8;
    Rng rng;
    Tensor q(Shape({bh, n, dh})), k(Shape({bh, n, dh})),
        s(Shape({bh, n, n}));
    q.fillNormal(rng);
    k.fillNormal(rng);
    for (auto _ : state) {
        batchedGemm(q, k, s, false, true);
        benchmark::DoNotOptimize(s.data());
    }
}
BENCHMARK(BM_BatchedGemmAttentionScore);

void
BM_Softmax(benchmark::State &state)
{
    const std::int64_t rows = state.range(0);
    Rng rng;
    Tensor x(Shape({rows, 128})), y(x.shape());
    x.fillNormal(rng);
    for (auto _ : state) {
        softmaxForward(x, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Softmax)->Arg(256)->Arg(1024);

void
BM_LayerNorm(benchmark::State &state)
{
    const std::int64_t rows = state.range(0);
    Rng rng;
    Tensor x(Shape({rows, 256})), y(x.shape());
    Tensor gamma(Shape({256})), beta(Shape({256}));
    Tensor mean(Shape({rows})), rstd(Shape({rows}));
    gamma.fill(1.0f);
    x.fillNormal(rng);
    for (auto _ : state) {
        layerNormForward(x, gamma, beta, y, mean, rstd);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_LayerNorm)->Arg(256)->Arg(1024);

void
BM_Gelu(benchmark::State &state)
{
    Rng rng;
    Tensor x(Shape({state.range(0)})), y(x.shape());
    x.fillNormal(rng);
    for (auto _ : state) {
        geluForward(x, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Gelu)->Arg(1 << 14)->Arg(1 << 18);

void
BM_LambStep(benchmark::State &state)
{
    Rng rng;
    Parameter param("w", Shape({state.range(0)}));
    param.value.fillNormal(rng);
    param.grad.fillNormal(rng);
    Lamb lamb(OptimizerConfig{});
    std::vector<Parameter *> params{&param};
    for (auto _ : state) {
        lamb.step(params);
        benchmark::DoNotOptimize(param.value.data());
    }
}
BENCHMARK(BM_LambStep)->Arg(1 << 14)->Arg(1 << 18);

void
BM_UnfusedAdamStep(benchmark::State &state)
{
    // The real-execution counterpart of Fig. 12a: same update as
    // BM_AdamStep-equivalent below but one kernel per elementary op.
    Rng rng;
    Parameter param("w", Shape({state.range(0)}));
    param.value.fillNormal(rng);
    param.grad.fillNormal(rng);
    UnfusedAdam adam(OptimizerConfig{});
    std::vector<Parameter *> params{&param};
    for (auto _ : state) {
        adam.step(params);
        benchmark::DoNotOptimize(param.value.data());
    }
}
BENCHMARK(BM_UnfusedAdamStep)->Arg(1 << 14)->Arg(1 << 18);

void
BM_FusedAdamStep(benchmark::State &state)
{
    Rng rng;
    Parameter param("w", Shape({state.range(0)}));
    param.value.fillNormal(rng);
    param.grad.fillNormal(rng);
    Adam adam(OptimizerConfig{});
    std::vector<Parameter *> params{&param};
    for (auto _ : state) {
        adam.step(params);
        benchmark::DoNotOptimize(param.value.data());
    }
}
BENCHMARK(BM_FusedAdamStep)->Arg(1 << 14)->Arg(1 << 18);

void
BM_TinyBertIteration(benchmark::State &state)
{
    const BertConfig config = tinyConfig();
    NnRuntime rt;
    rt.dropoutP = 0.0f;
    BertPretrainer trainer(config, &rt);
    Rng init_rng(7);
    trainer.initialize(init_rng);
    SyntheticDataset dataset(config, 11);
    Lamb lamb(OptimizerConfig{});
    auto params = trainer.parameters();
    for (auto _ : state) {
        const PretrainBatch batch = dataset.nextBatch();
        trainer.zeroGrad();
        auto result = trainer.forwardBackward(batch);
        lamb.step(params);
        benchmark::DoNotOptimize(result.mlmLoss);
    }
}
BENCHMARK(BM_TinyBertIteration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
