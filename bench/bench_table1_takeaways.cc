/**
 * @file
 * Regenerates Table 1: the paper's summary of takeaways, with each
 * claim re-derived from this library's models and marked REPRODUCED
 * or DIVERGES. This is the one-stop shape-agreement check.
 */

#include <cmath>
#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    const DeviceSpec spec = mi100();
    Characterizer characterizer(spec);
    const CommModel comm(spec, AllReduceAlgo::Ring);

    Table table("Table 1 — takeaway summary, re-derived");
    table.setHeader({"#", "Takeaway", "Paper", "Measured (model)",
                     "Status"});

    const auto fp32 = characterizer.run(withPhase1(bertLarge(), 32));
    BertConfig mp_cfg = withPhase1(bertLarge(), 32);
    mp_cfg.precision = Precision::Mixed;
    const auto mp = characterizer.run(mp_cfg);
    const auto b4 = characterizer.run(withPhase1(bertLarge(), 4));
    const auto c3 = characterizer.run(withPhase1(scalingC3(), 16));
    const auto ph2 = characterizer.run(withPhase2(bertLarge(), 4));

    auto status = [](bool ok) { return ok ? "REPRODUCED" : "DIVERGES"; };

    // T1/T2: LAMB is the second-highest contributor and grows with
    // fewer tokens / mixed precision.
    {
        const double lamb32 = fp32.scopeShare("Optimizer");
        const double lamb4 = b4.scopeShare("Optimizer");
        const double lamb_mp = mp.scopeShare("Optimizer");
        char measured[96];
        std::snprintf(measured, sizeof(measured),
                      "%.1f%% (B32) / %.1f%% (B4) / %.1f%% (MP)",
                      lamb32 * 100, lamb4 * 100, lamb_mp * 100);
        table.addRow({"1-2", "LAMB 2nd-highest; grows w/ fewer tokens, MP",
                      "7-10% / ~25% / 16-19%", measured,
                      status(lamb32 > 0.05 && lamb4 > 0.15 &&
                             lamb_mp > lamb32)});
    }
    // T3: GEMMs speed up more than non-GEMMs under MP.
    {
        const double gemm32 = fp32.gemmShare();
        const double gemm16 = mp.gemmShare();
        char measured[64];
        std::snprintf(measured, sizeof(measured), "%.1f%% -> %.1f%%",
                      gemm32 * 100, gemm16 * 100);
        table.addRow({"3", "GEMM share drops under MP", "55% -> 36%",
                      measured, status(gemm16 < gemm32)});
    }
    // T4: attention operations are a small share.
    {
        const double attn32 = fp32.subLayerShare("Attn B-GEMM") +
                              fp32.subLayerShare("Scale+Mask+DR+SM");
        char measured[32];
        std::snprintf(measured, sizeof(measured), "%.1f%%", attn32 * 100);
        table.addRow({"4", "Attention ops small share", "7% (FP32)",
                      measured, status(attn32 < 0.15)});
    }
    // T6: attention B-GEMMs are bandwidth-hungry vs FC GEMMs.
    {
        KernelCostModel cost(spec);
        double attn_demand = 0.0, fc_demand = 0.0;
        int attn_n = 0, fc_n = 0;
        for (const auto &timed : fp32.timed.ops) {
            if (timed.op.layerIndex != 0)
                continue;
            if (timed.op.kind == OpKind::BatchedGemm) {
                attn_demand += cost.bandwidthDemand(timed.op);
                ++attn_n;
            } else if (timed.op.kind == OpKind::Gemm &&
                       timed.op.sub == SubLayer::FcGemm) {
                fc_demand += cost.bandwidthDemand(timed.op);
                ++fc_n;
            }
        }
        attn_demand /= attn_n;
        fc_demand /= fc_n;
        char measured[64];
        std::snprintf(measured, sizeof(measured), "%.0f%% vs %.0f%%",
                      attn_demand * 100, fc_demand * 100);
        table.addRow({"6", "Attn B-GEMMs much higher BW demand than FC",
                      "~70% vs ~20%", measured,
                      status(attn_demand > 2.0 * fc_demand)});
    }
    // T7: LAMB reads 4x the model size.
    {
        BertTraceBuilder builder(withPhase1(bertLarge(), 32));
        const OpTrace update = builder.buildUpdate();
        std::int64_t read = 0;
        for (const auto &op : update.ops)
            if (op.sub == SubLayer::LambStage1)
                read += op.stats.bytesRead;
        const double model_bytes = static_cast<double>(
            withPhase1(bertLarge(), 32).parameterCount() * 4);
        char measured[32];
        std::snprintf(measured, sizeof(measured), "%.1fx",
                      static_cast<double>(read) / model_bytes);
        table.addRow({"7", "LAMB stage-1 reads vs model size", "4x",
                      measured,
                      status(std::abs(read / model_bytes - 4.0) < 0.3)});
    }
    // T8/T9: memory-bound EW ops are a large and growing share.
    {
        auto ew_share = [](const CharacterizationResult &result) {
            double s = 0.0;
            for (const char *kind : {"EW", "Reduce", "Gather"}) {
                auto it = result.byKind.find(kind);
                if (it != result.byKind.end())
                    s += it->second.seconds;
            }
            return s / result.totalSeconds;
        };
        char measured[64];
        std::snprintf(measured, sizeof(measured), "%.1f%% -> %.1f%% (MP)",
                      ew_share(fp32) * 100, ew_share(mp) * 100);
        table.addRow({"8-9", "Non-GEMM ops big share, grows w/ MP",
                      "~45% -> ~64%", measured,
                      status(ew_share(mp) > ew_share(fp32))});
    }
    // T10: higher n makes attention important.
    {
        const auto b16 = characterizer.run(withPhase1(bertLarge(), 16));
        const double a1 = b16.subLayerShare("Attn B-GEMM") +
                          b16.subLayerShare("Scale+Mask+DR+SM");
        const double a2 = ph2.subLayerShare("Attn B-GEMM") +
                          ph2.subLayerShare("Scale+Mask+DR+SM");
        char measured[64];
        std::snprintf(measured, sizeof(measured),
                      "%.1f%% (n=128) -> %.1f%% (n=512)", a1 * 100,
                      a2 * 100);
        table.addRow({"10", "Higher n raises attention share",
                      "7% -> 17%", measured, status(a2 > 1.5 * a1)});
    }
    // T11: GEMM and LAMB shares grow with layer width.
    {
        const auto c2 = characterizer.run(withPhase1(scalingC2(), 16));
        char measured[96];
        std::snprintf(measured, sizeof(measured),
                      "GEMM %.1f%%->%.1f%%, LAMB %.1f%%->%.1f%%",
                      c2.gemmShare() * 100, c3.gemmShare() * 100,
                      c2.scopeShare("Optimizer") * 100,
                      c3.scopeShare("Optimizer") * 100);
        table.addRow({"11", "GEMM & LAMB shares grow with width (C2->C3)",
                      "LAMB up to 34% (C3)", measured,
                      status(c3.gemmShare() > c2.gemmShare() &&
                             c3.scopeShare("Optimizer") >
                                 c2.scopeShare("Optimizer"))});
    }
    // T12/T13: tensor slicing (2-way vs 8-way).
    {
        TensorSlicingModel ts(spec, comm);
        const auto t1 = ts.evaluate(withPhase1(bertLarge(), 16), 2);
        const auto t2 = ts.evaluate(withPhase1(bertLarge(), 64), 8);
        const double comm1 =
            t1.exposedCommSeconds / t1.timed.totalSeconds();
        const double comm2 =
            t2.exposedCommSeconds / t2.timed.totalSeconds();
        char measured[64];
        std::snprintf(measured, sizeof(measured),
                      "%.0f%% (2-way) -> %.0f%% (8-way)", comm1 * 100,
                      comm2 * 100);
        table.addRow({"12-13", "TS comm share grows with device count",
                      "9% -> 42%", measured, status(comm2 > comm1)});
    }

    std::printf("%s\n", table.render().c_str());
    return 0;
}
