/**
 * @file
 * Reproduces Fig. 4: hierarchical breakdown of the Transformer layers
 * for single-precision (Ph1-B32-FP32) and mixed-precision
 * (Ph1-B32-FP16) training. Prints the three bars of the figure —
 * Transformer-level groups, the Attention layer split, and the FC
 * layer split — as shares of total training time.
 *
 * Paper reference points (FP32 -> MP): Linear+FC GEMMs 57% -> 42%;
 * attention ops (B-GEMM + Scale/Mask/DR/SM) 7% -> 9%; linear
 * projections 22% -> 19%; GeLU 13% -> 15%; DR+RC+LN 5% -> 9%.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

namespace {

void
printHierarchy(const CharacterizationResult &result)
{
    std::printf("== %s (iteration %s, %zu kernels) ==\n",
                result.config.tag().c_str(),
                formatSeconds(result.totalSeconds).c_str(),
                result.kernelCount);

    Table groups("Transformer sub-layer groups (share of total time)");
    groups.setHeader({"Group", "Share", "Kernels", "FLOP/B"});
    const char *order[] = {"Attn Linear", "Attn B-GEMM",
                           "Scale+Mask+DR+SM", "FC GEMM", "GeLU",
                           "DR+RC+LN"};
    for (const char *group : order) {
        auto it = result.bySubLayer.find(group);
        if (it == result.bySubLayer.end())
            continue;
        char intensity[32];
        std::snprintf(intensity, sizeof(intensity), "%.2f",
                      it->second.stats.opsPerByte());
        groups.addRow({group,
                       formatPercent(it->second.seconds /
                                     result.totalSeconds),
                       std::to_string(it->second.kernelCount), intensity});
    }
    std::printf("%s", groups.render().c_str());

    const double linear = result.subLayerShare("Attn Linear");
    const double fc = result.subLayerShare("FC GEMM");
    const double attn_ops = result.subLayerShare("Attn B-GEMM") +
                            result.subLayerShare("Scale+Mask+DR+SM");
    std::printf("Linear+FC GEMM share: %s   attention-op share: %s   "
                "GEMM-kernel share: %s\n\n",
                formatPercent(linear + fc).c_str(),
                formatPercent(attn_ops).c_str(),
                formatPercent(result.gemmShare()).c_str());
}

} // namespace

int
main()
{
    Characterizer characterizer(mi100());

    BertConfig fp32 = withPhase1(bertLarge(), 32);
    printHierarchy(characterizer.run(fp32));

    BertConfig mp = fp32;
    mp.precision = Precision::Mixed;
    printHierarchy(characterizer.run(mp));

    std::printf("Paper: Linear+FC GEMMs 57%% (FP32) -> 42%% (MP); "
                "attention ops 7%% -> 9%%; GeLU 13%% -> 15%%; "
                "DR+RC+LN 5%% -> 9%%.\n");
    return 0;
}
