/**
 * @file
 * Recording-overhead bench for the telemetry subsystem: run the same
 * training-step and forward-only eval loops with trace recording off
 * and on, and report the throughput delta — the "always-on profiling
 * must be cheap" claim, quantified. Also reports what the recording
 * produced (events, chunks, on-disk bytes, compression ratio) by
 * re-opening the container it just wrote, so this binary doubles as
 * the record -> replay smoke for scripts/run_all.sh.
 *
 * Usage: bench_trace_overhead [--quick] [--json <path>]
 *                             [--record <path>]
 *   --quick shrinks step counts for CI smoke runs.
 *   --json writes a machine-readable results file.
 *   --record sets the container path (default
 *     bench_trace_overhead.bptr in the working directory; the file is
 *     left on disk for bptrace).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/bertprof.h"
#include "serve/traffic.h"
#include "telemetry/trace_reader.h"
#include "util/stopwatch.h"

using namespace bertprof;

namespace {

/**
 * Kernel sizes matter here: recording cost is per event, so the
 * overhead ratio depends on how much work each kernel does. A
 * nano-sized config would measure the recorder against ~2us kernels
 * no real run produces; this config keeps kernels in the
 * tens-to-hundreds of microseconds, the small end of the paper's
 * range, making the reported percentage an upper bound.
 */
BertConfig
benchConfig(bool quick)
{
    BertConfig config;
    config.name = "bert-trace-bench";
    config.numLayers = 2;
    config.dModel = quick ? 64 : 128;
    config.numHeads = 4;
    config.dFf = 4 * config.dModel;
    config.vocabSize = 512;
    config.maxPositions = 64;
    config.typeVocab = 2;
    config.batch = 2;
    config.seqLen = quick ? 32 : 64;
    config.maxPredictions = 8;
    config.numClasses = 2;
    return config;
}

/** Best-of-N wrapper: rerun a loop and keep the fastest rate, so a
 * noisy-neighbor stall in either mode doesn't masquerade as
 * (negative) recording overhead. */
template <typename F>
double
bestOf(int rounds, F &&loop)
{
    double best = 0.0;
    for (int r = 0; r < rounds; ++r)
        best = std::max(best, loop());
    return best;
}

/** One self-contained training run; returns steps/s. */
double
runTrainLoop(const BertConfig &config, int steps)
{
    NnRuntime rt;
    BertPretrainer model(config, &rt);
    Rng init(20260808);
    model.initialize(init);
    SyntheticDataset dataset(config, 77);
    Lamb optimizer{OptimizerConfig{}};
    GradScaler scaler(1024.0f);
    LrSchedule schedule(1e-3f, 4, 400, DecayKind::Polynomial, 1.0);
    Trainer trainer(model, optimizer, scaler, schedule, dataset, rt);
    // Warm-up outside the timed region.
    (void)trainer.trainStep();
    Stopwatch watch;
    for (int i = 0; i < steps; ++i)
        (void)trainer.trainStep();
    return steps / watch.elapsed();
}

/** One self-contained forward-only eval run; returns batches/s. */
double
runEvalLoop(const BertConfig &config, int batches)
{
    NnRuntime rt;
    BertClassifier model(config, &rt);
    Rng init(20260808);
    model.initialize(init);
    model.setTraining(false);
    Rng body(42);
    InferRequest probe =
        syntheticRequest(body, 0, config.seqLen, config.vocabSize);
    (void)model.forwardLogitsEval(probe.tokenIds, probe.segmentIds, 1,
                                  config.seqLen, {});
    Stopwatch watch;
    for (int i = 0; i < batches; ++i) {
        (void)model.forwardLogitsEval(probe.tokenIds, probe.segmentIds,
                                      1, config.seqLen, {});
    }
    return batches / watch.elapsed();
}

double
overheadPct(double base, double recorded)
{
    if (base <= 0.0 || recorded <= 0.0)
        return 0.0;
    return (base / recorded - 1.0) * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    std::string trace_path = "bench_trace_overhead.bptr";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc)
            trace_path = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--json <path>] "
                         "[--record <path>]\n",
                         argv[0]);
            return 2;
        }
    }

    const BertConfig config = benchConfig(quick);
    const int train_steps = quick ? 3 : 10;
    const int eval_batches = quick ? 10 : 60;
    const int rounds = quick ? 1 : 5;

    // Baseline: recording off, no profiler — ScopedKernel is a no-op.
    const double train_base = bestOf(
        rounds, [&] { return runTrainLoop(config, train_steps); });
    const double eval_base = bestOf(
        rounds, [&] { return runEvalLoop(config, eval_batches); });

    // Recorded: same loops with the trace recorder armed.
    TraceRecorder &recorder = TraceRecorder::instance();
    RecorderOptions options;
    options.path = trace_path;
    IoStatus status = recorder.start(options);
    if (!status.ok()) {
        std::fprintf(stderr, "cannot start recording: %s\n",
                     status.toString().c_str());
        return 1;
    }
    const double train_rec = bestOf(
        rounds, [&] { return runTrainLoop(config, train_steps); });
    const double eval_rec = bestOf(
        rounds, [&] { return runEvalLoop(config, eval_batches); });
    const std::int64_t events = recorder.eventsRecorded();
    const std::int64_t dropped = recorder.eventsDropped();
    status = recorder.stop();
    if (!status.ok()) {
        std::fprintf(stderr, "recording failed: %s\n",
                     status.toString().c_str());
        return 1;
    }

    // Re-open what we just wrote: the record -> replay smoke.
    TraceReader reader;
    status = reader.open(trace_path);
    if (!status.ok()) {
        std::fprintf(stderr, "recorded container unreadable: %s\n",
                     status.toString().c_str());
        return 1;
    }
    std::int64_t raw_bytes = 0;
    for (std::size_t c = 0; c < reader.chunkCount(); ++c)
        raw_bytes += static_cast<std::int64_t>(reader.chunk(c).rawSize);
    const double ratio =
        reader.fileSize() > 0
            ? static_cast<double>(raw_bytes) /
                  static_cast<double>(reader.fileSize())
            : 0.0;

    const double train_pct = overheadPct(train_base, train_rec);
    const double eval_pct = overheadPct(eval_base, eval_rec);

    Table table("Trace recording overhead (" +
                std::to_string(train_steps) + " train steps, " +
                std::to_string(eval_batches) + " eval batches)");
    table.setHeader({"loop", "off", "on", "overhead"});
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f%%", train_pct);
    table.addRow({"train steps/s",
                  std::to_string(train_base),
                  std::to_string(train_rec), buf});
    std::snprintf(buf, sizeof buf, "%.2f%%", eval_pct);
    table.addRow({"eval batches/s",
                  std::to_string(eval_base),
                  std::to_string(eval_rec), buf});
    std::printf("%s\n", table.render().c_str());

    std::printf("recorded %lld events (%lld dropped) into %zu chunks, "
                "%zu bytes on disk, %.2fx compression, tail %s\n",
                static_cast<long long>(events),
                static_cast<long long>(dropped), reader.chunkCount(),
                reader.fileSize(), ratio,
                reader.truncatedTail() ? "TORN" : "clean");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"quick\": %s,\n"
                     "  \"train_steps_per_s_off\": %.6g,\n"
                     "  \"train_steps_per_s_on\": %.6g,\n"
                     "  \"train_overhead_pct\": %.4g,\n"
                     "  \"eval_batches_per_s_off\": %.6g,\n"
                     "  \"eval_batches_per_s_on\": %.6g,\n"
                     "  \"eval_overhead_pct\": %.4g,\n"
                     "  \"events\": %lld,\n"
                     "  \"events_dropped\": %lld,\n"
                     "  \"chunks\": %zu,\n"
                     "  \"file_bytes\": %zu,\n"
                     "  \"compression_ratio\": %.4g\n"
                     "}\n",
                     quick ? "true" : "false", train_base, train_rec,
                     train_pct, eval_base, eval_rec, eval_pct,
                     static_cast<long long>(events),
                     static_cast<long long>(dropped),
                     reader.chunkCount(), reader.fileSize(), ratio);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
