/**
 * @file
 * Parallel scaling of the CPU substrate over the runtime thread pool:
 * speedup at 1/2/4/8 threads for the paper's Table 2b GEMM shapes
 * (linear projection GEMM plus the B*h batched attention GEMMs) and
 * for the fused-vs-unfused Adam update loops (the Fig. 12a fusion
 * study's optimizer kernels). All timing uses the monotonic
 * Stopwatch (std::chrono::steady_clock).
 *
 * Usage: bench_cpu_parallel_scaling [--quick]
 *   --quick shrinks shapes and the thread sweep for CI smoke runs.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/bertprof.h"
#include "ops/gemm.h"
#include "runtime/config.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace bertprof;

namespace {

/** Best-of-reps wall time of fn() in seconds (monotonic clock). */
Seconds
timeBest(int reps, const std::function<void()> &fn)
{
    Seconds best = 0.0;
    for (int r = 0; r < reps; ++r) {
        Stopwatch watch;
        fn();
        const Seconds t = watch.elapsed();
        if (r == 0 || t < best)
            best = t;
    }
    return best;
}

struct Case {
    std::string name;
    std::function<void()> run;
    int reps = 3;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    // Phase-1 BERT-Large geometry (Table 2b): n = 128, h = 16,
    // d_head = 64, d_model = 1024. The batch is sized so the full
    // sweep stays tractable on the blocked reference kernels.
    const std::int64_t seq = quick ? 32 : 128;
    const std::int64_t heads = 16;
    const std::int64_t batch = quick ? 2 : 8; // mini-batch B
    const std::int64_t groups = batch * heads;
    const std::int64_t d_head = 64;
    const std::int64_t d_model = quick ? 256 : 1024;
    const std::int64_t tokens = batch * seq;
    const std::int64_t adam_numel = quick ? 1 << 16 : 1 << 21;
    const int reps = quick ? 1 : 3;

    Rng rng(1234);
    // Attention score: [B*h] n x n x d_head.
    Tensor q(Shape({groups, seq, d_head})), kT(Shape({groups, seq, d_head}));
    Tensor scores(Shape({groups, seq, seq}));
    q.fillNormal(rng);
    kT.fillNormal(rng);
    // Attention output: [B*h] n x d_head x n.
    Tensor probs(Shape({groups, seq, seq})), v(Shape({groups, seq, d_head}));
    Tensor ctx(Shape({groups, seq, d_head}));
    probs.fillUniform(rng);
    v.fillNormal(rng);
    // Linear projection: (B*n) x d_model x d_model.
    Tensor x(Shape({tokens, d_model})), w(Shape({d_model, d_model}));
    Tensor y(Shape({tokens, d_model}));
    x.fillNormal(rng);
    w.fillNormal(rng);

    // Optimizer loops: one big flat parameter, a few steps.
    const auto run_optimizer = [&](bool fused) {
        Parameter p("bench.p", Shape({adam_numel}));
        Rng prng(77);
        p.value.fillNormal(prng);
        p.grad.fillNormal(prng);
        OptimizerConfig config;
        if (fused) {
            Adam adam(config);
            for (int s = 0; s < 2; ++s)
                adam.step({&p});
        } else {
            UnfusedAdam adam(config);
            for (int s = 0; s < 2; ++s)
                adam.step({&p});
        }
    };

    std::vector<Case> cases;
    cases.push_back({"attn_score bGEMM [" + std::to_string(groups) + "] " +
                         std::to_string(seq) + "x" + std::to_string(seq) +
                         "x" + std::to_string(d_head),
                     [&] { batchedGemm(q, kT, scores, false, true); }, reps});
    cases.push_back({"attn_out   bGEMM [" + std::to_string(groups) + "] " +
                         std::to_string(seq) + "x" + std::to_string(d_head) +
                         "x" + std::to_string(seq),
                     [&] { batchedGemm(probs, v, ctx); }, reps});
    cases.push_back({"linear      GEMM " + std::to_string(tokens) + "x" +
                         std::to_string(d_model) + "x" +
                         std::to_string(d_model),
                     [&] { gemm(x, w, y); }, quick ? 1 : 2});
    cases.push_back({"adam fused   " + std::to_string(adam_numel) + " elems",
                     [&] { run_optimizer(true); }, reps});
    cases.push_back({"adam unfused " + std::to_string(adam_numel) + " elems",
                     [&] { run_optimizer(false); }, reps});

    const std::vector<int> thread_counts =
        quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

    std::printf("CPU parallel scaling (work-stealing pool, "
                "deterministic chunking)\n");
    std::printf("hardware_concurrency = %u\n",
                std::thread::hardware_concurrency());

    Table table("Speedup over 1 thread (best of " + std::to_string(reps) +
                ", steady_clock seconds)");
    std::vector<std::string> header = {"Kernel"};
    for (const int t : thread_counts)
        header.push_back("t=" + std::to_string(t));
    header.push_back("speedup@4" );
    table.setHeader(header);

    for (const Case &c : cases) {
        std::vector<Seconds> seconds;
        for (const int t : thread_counts) {
            setNumThreads(t);
            c.run(); // warm-up: page in buffers, spin up workers
            seconds.push_back(timeBest(c.reps, c.run));
        }
        setNumThreads(0);

        std::vector<std::string> row = {c.name};
        for (const Seconds s : seconds)
            row.push_back(formatSeconds(s));
        double speedup4 = 0.0;
        for (std::size_t i = 0; i < thread_counts.size(); ++i)
            if (thread_counts[i] == 4)
                speedup4 = seconds[0] / seconds[i];
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2fx", speedup4);
        row.push_back(thread_counts.back() >= 4 ? buf : "n/a");
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Note: speedup is bounded by the physical cores of this host;\n"
        "on a 1-core container all thread counts time the same serial\n"
        "work plus pool overhead. Outputs are bitwise identical at\n"
        "every thread count (see tests/test_parallel_determinism.cc).\n");
    return 0;
}
