/**
 * @file
 * Reproduces Sec. 4: activation checkpointing. BERT-Large with
 * checkpoints every 6 layers (sqrt(24)=~4 segments) recomputes each
 * segment's forward before backpropagating it.
 *
 * Paper reference points: ~+33% kernels, ~+27% runtime; the
 * within-Transformer breakdown stays similar; LAMB's share drops
 * (its absolute time is unchanged).
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());

    BertConfig base = withPhase1(bertLarge(), 32);
    BertConfig ckpt = base;
    ckpt.checkpointEvery = 6;

    const auto r_base = characterizer.run(base);
    const auto r_ckpt = characterizer.run(ckpt);

    Table table("Sec. 4 — activation checkpointing (Ph1-B32-FP32, "
                "checkpoint every 6 layers)");
    table.setHeader({"Metric", "Baseline", "Checkpointed", "Delta"});
    char delta[64];
    std::snprintf(delta, sizeof(delta), "+%.1f%%",
                  100.0 * (static_cast<double>(r_ckpt.kernelCount) /
                               static_cast<double>(r_base.kernelCount) -
                           1.0));
    table.addRow({"Kernels", std::to_string(r_base.kernelCount),
                  std::to_string(r_ckpt.kernelCount), delta});
    std::snprintf(delta, sizeof(delta), "+%.1f%%",
                  100.0 * (r_ckpt.totalSeconds / r_base.totalSeconds -
                           1.0));
    table.addRow({"Iteration time", formatSeconds(r_base.totalSeconds),
                  formatSeconds(r_ckpt.totalSeconds), delta});
    table.addRow({"LAMB share",
                  formatPercent(r_base.scopeShare("Optimizer")),
                  formatPercent(r_ckpt.scopeShare("Optimizer")),
                  "(drops)"});
    table.addRow({"FC GEMM share",
                  formatPercent(r_base.subLayerShare("FC GEMM")),
                  formatPercent(r_ckpt.subLayerShare("FC GEMM")),
                  "(similar)"});
    table.addRow({"GeLU share",
                  formatPercent(r_base.subLayerShare("GeLU")),
                  formatPercent(r_ckpt.subLayerShare("GeLU")),
                  "(similar)"});
    std::printf("%s\n", table.render().c_str());

    // Activation memory saved (footprint model): without
    // checkpointing every layer's activations stay live; with it only
    // sqrt(N) checkpoints plus one segment do.
    const MemoryFootprint fp_base = trainingFootprint(base);
    const MemoryFootprint fp_ckpt = trainingFootprint(ckpt);
    std::printf("Live activations: baseline %s vs checkpointed %s; "
                "total footprint %s vs %s.\n",
                formatBytes(static_cast<double>(fp_base.activations))
                    .c_str(),
                formatBytes(static_cast<double>(fp_ckpt.activations))
                    .c_str(),
                formatBytes(static_cast<double>(fp_base.total())).c_str(),
                formatBytes(static_cast<double>(fp_ckpt.total()))
                    .c_str());
    const std::int64_t hbm = 32LL * 1024 * 1024 * 1024;
    std::printf("Largest B that fits a 32 GiB device: %lld without vs "
                "%lld with checkpointing.\n",
                static_cast<long long>(
                    maxBatchThatFits(withPhase1(bertLarge(), 1), hbm)),
                static_cast<long long>(maxBatchThatFits(
                    [] {
                        BertConfig c = withPhase1(bertLarge(), 1);
                        c.checkpointEvery = 6;
                        return c;
                    }(),
                    hbm)));
    std::printf("Paper: ~+33%% kernels, ~+27%% runtime, similar "
                "Transformer breakdown, lower LAMB share.\n");
    return 0;
}
