/**
 * @file
 * Reproduces Fig. 7: arithmetic intensity and bandwidth demand
 * (normalized to the best-achieved streaming bandwidth) of BERT's
 * operation classes — FC/linear GEMMs, attention B-GEMMs,
 * LAMBStage1/2, Scale+Mask+DR+SM, GeLU, DR+RC+LN, and a plain EW
 * multiply reference.
 *
 * Paper reference points: attention GEMMs demand ~70% of peak
 * bandwidth vs ~20% for FC/linear GEMMs; LAMB stages, GeLU, and
 * DR+RC+LN all have FLOP/B near or below 1 and are bandwidth bound.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    const DeviceSpec spec = mi100();
    Characterizer characterizer(spec);
    KernelCostModel cost(spec);
    const BertConfig config = withPhase1(bertLarge(), 32);
    const auto result = characterizer.run(config);

    // Aggregate intensity and bandwidth demand per op class, using
    // time-weighted bandwidth demand over the class's kernels.
    struct ClassAgg {
        double flops = 0.0;
        double bytes = 0.0;
        Seconds busy = 0.0;
        std::int64_t kernels = 0;
    };
    std::map<std::string, ClassAgg> classes;
    auto classify = [](const OpDesc &op) -> std::string {
        if (op.kind == OpKind::Gemm &&
            op.scope == LayerScope::Transformer) {
            return op.sub == SubLayer::FcGemm ? "FC GEMM" : "Linear GEMM";
        }
        if (op.kind == OpKind::BatchedGemm)
            return "Attn B-GEMM";
        if (op.sub == SubLayer::LambStage1)
            return "LAMBStage1";
        if (op.sub == SubLayer::LambStage2)
            return "LAMBStage2";
        if (op.sub == SubLayer::AttnScaleMaskDrSm)
            return "Scale+Mask+DR+SM";
        if (op.sub == SubLayer::FcGelu)
            return "GeLU";
        if (op.sub == SubLayer::DrRcLn)
            return "DR+RC+LN";
        return "";
    };
    for (const auto &timed : result.timed.ops) {
        const std::string cls = classify(timed.op);
        if (cls.empty())
            continue;
        auto &agg = classes[cls];
        agg.flops += static_cast<double>(timed.op.stats.flops);
        agg.bytes += static_cast<double>(timed.op.stats.bytesTotal());
        agg.busy += std::max(timed.time.compute, timed.time.memory);
        ++agg.kernels;
    }

    // Reference: a large element-wise multiply ([B*n, d_ff] sized) —
    // the op that achieves the best bandwidth in the paper.
    OpDesc ew_ref;
    ew_ref.name = "ew_multiply_ref";
    ew_ref.kind = OpKind::Elementwise;
    ew_ref.numel = config.tokens() * config.dFf;
    ew_ref.stats = elementwiseStats(ew_ref.numel, 2, 1, 1);
    const KernelTime ew_time = cost.evaluate(ew_ref);
    const double ew_bw = static_cast<double>(ew_ref.stats.bytesTotal()) /
                         std::max(ew_time.compute, ew_time.memory);

    Table table("Fig. 7 — op intensity and bandwidth demand "
                "(Ph1-B32-FP32; demand normalized to EW-multiply "
                "achieved bandwidth)");
    table.setHeader({"Op class", "Kernels", "FLOP/B", "BW demand",
                     "Bound"});
    const char *order[] = {"FC GEMM",    "Linear GEMM", "Attn B-GEMM",
                           "LAMBStage1", "LAMBStage2",  "Scale+Mask+DR+SM",
                           "GeLU",       "DR+RC+LN"};
    for (const char *cls : order) {
        auto it = classes.find(cls);
        if (it == classes.end())
            continue;
        const auto &agg = it->second;
        const double intensity =
            agg.bytes > 0.0 ? agg.flops / agg.bytes : 0.0;
        const double bw = agg.busy > 0.0 ? agg.bytes / agg.busy : 0.0;
        char intensity_str[32];
        std::snprintf(intensity_str, sizeof(intensity_str), "%.2f",
                      intensity);
        const double ridge =
            ridgePoint(spec,
                       std::string(cls).find("GEMM") != std::string::npos
                           ? OpKind::Gemm
                           : OpKind::Elementwise,
                       DType::F32);
        table.addRow({cls, std::to_string(agg.kernels), intensity_str,
                      formatPercent(bw / ew_bw),
                      intensity < ridge ? "memory@peak" : "compute@peak"});
    }
    table.addSeparator();
    table.addRow({"EW multiply (ref)", "1", "0.08", "100.0%",
                  "memory@peak"});
    std::printf("%s\n", table.render().c_str());
    rooflineScatterCsv(result.timed, spec).writeFile("fig7_roofline.csv");
    std::printf("Per-kernel roofline scatter written to "
                "fig7_roofline.csv.\n");
    std::printf("Paper: Attn B-GEMMs ~70%% bandwidth demand vs ~20%% for "
                "other GEMMs; LAMB stages / GeLU / DR+RC+LN near "
                "bandwidth-bound with FLOP/B <= ~1.\n");
    return 0;
}
