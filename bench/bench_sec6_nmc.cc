/**
 * @file
 * Reproduces Sec. 6.2.1: near-memory compute for the LAMB optimizer.
 * The update phase (a pure stream of element-wise kernels over 4x the
 * model's footprint) is offloaded to in-bank DRAM ALUs; GEMMs stay on
 * the GPU.
 *
 * Paper reference points: LAMB speeds up ~3.8x vs. an optimistic GPU
 * bound (minimal reads/writes at full external bandwidth), improving
 * end-to-end training by 5-22% depending on configuration.
 */

#include <algorithm>
#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    const DeviceSpec spec = mi100();
    Characterizer characterizer(spec);
    NmcOffloadEvaluator bank_nmc(hbm2BankNmc(), spec);
    NmcOffloadEvaluator shared_nmc(hbm2SharedAluNmc(), spec);

    Table table("Sec. 6.2.1 — LAMB on near-memory compute "
                "(bank-level ALUs)");
    table.setHeader({"Config", "LAMB share", "LAMB opt-GPU", "LAMB NMC",
                     "LAMB speedup", "End-to-end gain"});

    struct Entry {
        const char *label;
        BertConfig config;
    };
    std::vector<Entry> entries;
    entries.push_back({"Ph1-B32-FP32", withPhase1(bertLarge(), 32)});
    {
        BertConfig c = withPhase1(bertLarge(), 32);
        c.precision = Precision::Mixed;
        entries.push_back({"Ph1-B32-FP16", c});
    }
    entries.push_back({"Ph1-B4-FP32", withPhase1(bertLarge(), 4)});
    {
        BertConfig c = withPhase1(scalingC3(), 16);
        entries.push_back({"C3-B16-FP32", c});
    }
    {
        BertConfig c = withPhase1(scalingC3(), 16);
        c.precision = Precision::Mixed;
        entries.push_back({"C3-B16-FP16", c});
    }

    double min_gain = 1.0, max_gain = 0.0;
    for (const auto &[label, config] : entries) {
        const auto result = characterizer.run(config);
        const auto offload = bank_nmc.evaluate(result.timed);
        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%.1fx",
                      offload.optimizerSpeedup());
        const double gain = offload.endToEndImprovement();
        min_gain = std::min(min_gain, gain);
        max_gain = std::max(max_gain, gain);
        table.addRow({label,
                      formatPercent(result.scopeShare("Optimizer")),
                      formatSeconds(offload.gpuOptimisticSeconds),
                      formatSeconds(offload.nmcSeconds), speedup,
                      formatPercent(gain)});
    }
    std::printf("%s\n", table.render().c_str());

    // Design-space sweep (Sec. 6.2.1's tradeoff discussion): ALUs at
    // every bank vs shared among 2/4/8 banks. Fewer ALUs cut cost but
    // serialize the streaming work.
    {
        const auto result =
            characterizer.run(withPhase1(bertLarge(), 32));
        Table design("NMC design points (Ph1-B32-FP32)");
        design.setHeader({"Banks per ALU", "ALUs", "Internal BW",
                          "LAMB time", "LAMB speedup"});
        for (int sharing : {1, 2, 4, 8}) {
            DramSpec dram = hbm2BankNmc();
            dram.perBankBandwidth /= sharing;
            dram.perBankFlops /= sharing;
            NmcOffloadEvaluator evaluator(dram, spec);
            const auto offload = evaluator.evaluate(result.timed);
            char speedup[32];
            std::snprintf(speedup, sizeof(speedup), "%.1fx",
                          offload.optimizerSpeedup());
            design.addRow(
                {std::to_string(sharing),
                 std::to_string(dram.totalBanks() / sharing),
                 formatByteRate(dram.internalBandwidth()),
                 formatSeconds(offload.nmcSeconds), speedup});
        }
        std::printf("%s\n", design.render().c_str());
        const auto shared = shared_nmc.evaluate(result.timed);
        (void)shared;
    }
    std::printf("End-to-end gains span %s - %s across configurations.\n",
                formatPercent(min_gain).c_str(),
                formatPercent(max_gain).c_str());

    // Energy view (Sec. 6.2.1 also claims energy-efficiency gains):
    // LAMB's bytes at in-bank cost vs the external interface.
    {
        EnergyModel energy;
        NmcModel nmc(hbm2BankNmc());
        const auto result =
            characterizer.run(withPhase1(bertLarge(), 32));
        double gpu_joules = 0.0, nmc_joules = 0.0;
        for (const auto &timed : result.timed.ops) {
            if (timed.op.phase != Phase::Update ||
                !NmcModel::offloadable(timed.op))
                continue;
            gpu_joules += energy.kernelEnergy(timed).total();
            nmc_joules += energy
                              .nmcKernelEnergy(timed.op,
                                               nmc.timeFor(timed.op))
                              .total();
        }
        std::printf("LAMB energy (Ph1-B32-FP32): %.2f J on the GPU vs "
                    "%.2f J on NMC (%.1fx less).\n",
                    gpu_joules, nmc_joules, gpu_joules / nmc_joules);
    }
    std::printf("Paper: LAMB ~3.8x vs optimistic GPU; end-to-end "
                "5-22%%; NMC also improves energy efficiency.\n");
    return 0;
}
