/**
 * @file
 * Reproduces Fig. 8: impact of input size — mini-batch B in
 * {4, 8, 16, 32} at n=128, and sequence length n=512 (B chosen to
 * keep the token count comparable) — on the breakdown of BERT-Large
 * training.
 *
 * Paper reference points: LAMB share falls 25% -> 7% as B goes
 * 4 -> 32; within the Transformer the breakdown is largely stable
 * with B; raising n from 128 to 512 (B 16 -> 4, same token count)
 * grows the attention-op share from ~7% to ~17% (B-GEMMs ~3% -> ~8%)
 * because attention scales quadratically with n.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());

    Table table("Fig. 8 — input size sweep (BERT-Large, FP32)");
    table.setHeader({"Config", "Tokens", "Transformer", "LAMB", "Attn ops",
                     "Attn B-GEMM", "FC GEMM", "DR+RC+LN", "Iter time"});

    auto addRow = [&](const BertConfig &config) {
        const auto result = characterizer.run(config);
        const double attn_ops =
            result.subLayerShare("Attn B-GEMM") +
            result.subLayerShare("Scale+Mask+DR+SM");
        table.addRow({config.tag(), std::to_string(config.tokens()),
                      formatPercent(result.scopeShare("Transformer")),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatPercent(attn_ops),
                      formatPercent(result.subLayerShare("Attn B-GEMM")),
                      formatPercent(result.subLayerShare("FC GEMM")),
                      formatPercent(result.subLayerShare("DR+RC+LN")),
                      formatSeconds(result.totalSeconds)});
    };

    for (std::int64_t batch : {4, 8, 16, 32})
        addRow(withPhase1(bertLarge(), batch));
    table.addSeparator();
    // n=512 with B=16 (4x tokens) and B=4 (same tokens as Ph1-B16).
    addRow(withPhase2(bertLarge(), 16));
    addRow(withPhase2(bertLarge(), 4));

    std::printf("%s\n", table.render().c_str());

    // Head-count sweep at constant d_model: more heads mean more,
    // smaller B-GEMMs (batch B*h, dims d/h) — the manifestation knob
    // of Table 2a/2b.
    Table heads("Attention-head sweep (Ph1-B16, d_model=1024, FP32)");
    heads.setHeader({"h", "d/h", "B-GEMM batch", "Attn B-GEMM share",
                     "Iter time"});
    for (int h : {4, 8, 16, 32}) {
        BertConfig config = withPhase1(bertLarge(), 16);
        config.numHeads = h;
        const auto result = characterizer.run(config);
        heads.addRow({std::to_string(h),
                      std::to_string(config.headDim()),
                      std::to_string(config.batch * h),
                      formatPercent(result.subLayerShare("Attn B-GEMM")),
                      formatSeconds(result.totalSeconds)});
    }
    std::printf("%s\n", heads.render().c_str());

    // Gradient accumulation: the other way to grow tokens-per-update
    // (Sec. 2.4: LAMB updates once every few iterations).
    Table accum("Gradient accumulation at B=4 (tokens per update "
                "grow, LAMB share falls like larger B)");
    accum.setHeader({"Accum steps", "Tokens/update", "LAMB share",
                     "Time/update"});
    for (int steps : {1, 2, 4, 8}) {
        BertConfig config = withPhase1(bertLarge(), 4);
        config.gradAccumulationSteps = steps;
        const auto result = characterizer.run(config);
        accum.addRow({std::to_string(steps),
                      std::to_string(config.tokens() * steps),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatSeconds(result.totalSeconds)});
    }
    std::printf("%s\n", accum.render().c_str());
    std::printf("Paper: LAMB 25%% at B4 -> 7%% at B32; attention ops grow "
                "~7%% -> ~17%% (B-GEMM 3%% -> 8%%) when n 128 -> 512 at "
                "equal token count.\n");
    return 0;
}
