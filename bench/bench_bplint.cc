/**
 * @file
 * Throughput benchmark for the bplint v2 semantic analyzer: reads the
 * real repository scan set (src bench tests tools examples plus the
 * README env-knob table), then times whole-project lintProject()
 * passes — phase-1 TU models, the cross-TU ProjectModel, and all
 * twelve rules per pass. The linter guards every build, so it carries
 * an explicit latency budget: a pass over the full tree must stay
 * under 2 seconds, and the process exits nonzero when the median pass
 * blows it (the lint-labeled smoke test turns a regression into a
 * test failure).
 *
 * Usage: bench_bplint [--quick] [--json <path>]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace fs = std::filesystem;

namespace {

constexpr double kBudgetMs = 2000.0;

/** The tree-wide scan set, with report paths relative to the root. */
std::vector<bplint::SourceFile>
readScanSet(const fs::path &root)
{
    const char *dirs[] = {"src", "bench", "tests", "tools", "examples"};
    std::vector<bplint::SourceFile> files;
    for (const char *dir : dirs) {
        const fs::path base = root / dir;
        if (!fs::exists(base))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".h" && ext != ".cc")
                continue;
            std::ifstream in(entry.path());
            std::ostringstream buf;
            buf << in.rdbuf();
            files.push_back(
                {fs::relative(entry.path(), root).generic_string(),
                 buf.str()});
        }
    }
    std::sort(files.begin(), files.end(),
              [](const bplint::SourceFile &a, const bplint::SourceFile &b) {
                  return a.path < b.path;
              });
    return files;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    const fs::path root(BERTPROF_SOURCE_DIR);
    const std::vector<bplint::SourceFile> files = readScanSet(root);
    if (files.empty()) {
        std::fprintf(stderr, "no scan set under %s\n",
                     root.string().c_str());
        return 1;
    }

    bplint::LintOptions opts;
    {
        std::ifstream in(root / "README.md");
        std::ostringstream buf;
        buf << in.rdbuf();
        opts.envDocPath = "README.md";
        opts.envDocText = buf.str();
    }

    std::size_t bytes = 0;
    std::size_t lines = 0;
    for (const auto &f : files) {
        bytes += f.text.size();
        lines += static_cast<std::size_t>(
            std::count(f.text.begin(), f.text.end(), '\n'));
    }

    const int reps = quick ? 3 : 10;
    std::vector<double> ms;
    std::size_t findings = 0;
    for (int r = 0; r < reps; ++r) {
        const bertprof::MonoTime start = bertprof::monoNow();
        const auto out = bplint::lintProject(files, opts);
        ms.push_back(
            bertprof::secondsBetween(start, bertprof::monoNow()) * 1e3);
        findings = out.size();
    }
    std::sort(ms.begin(), ms.end());
    const double median = ms[ms.size() / 2];
    const double best = ms.front();

    bertprof::Table table("bplint whole-tree analysis (" +
                          std::to_string(files.size()) + " files, " +
                          std::to_string(lines) + " lines)");
    table.setHeader({"Metric", "Value"});
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f ms", median);
    table.addRow({"median pass", buf});
    std::snprintf(buf, sizeof(buf), "%.1f ms", best);
    table.addRow({"best pass", buf});
    std::snprintf(buf, sizeof(buf), "%.1f MB/s",
                  static_cast<double>(bytes) / 1e6 / (median / 1e3));
    table.addRow({"throughput", buf});
    table.addRow({"findings", std::to_string(findings)});
    std::printf("%s\n", table.render().c_str());

    const bool within = median < kBudgetMs;
    std::printf("budget: median %.1f ms %s %.0f ms limit\n", median,
                within ? "within" : "EXCEEDS", kBudgetMs);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_bplint\",\n");
        std::fprintf(f,
                     "  \"config\": {\"reps\": %d, \"quick\": %s},\n",
                     reps, quick ? "true" : "false");
        std::fprintf(
            f,
            "  \"lint\": {\"files\": %zu, \"lines\": %zu, \"bytes\": "
            "%zu,\n    \"median_ms\": %.3f, \"best_ms\": %.3f, "
            "\"findings\": %zu,\n    \"budget_ms\": %.0f, "
            "\"within_budget\": %s}\n}\n",
            files.size(), lines, bytes, median, best, findings,
            kBudgetMs, within ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return within ? 0 : 1;
}
