/**
 * @file
 * Reproduces the Sec. 7 discussion quantitatively: fine-tuning
 * (SQuAD span head, GLUE classification head) keeps the transformer
 * dominance with a negligible output layer, and inference keeps the
 * transformer-layer breakdown of the training forward pass while
 * dropping backprop and LAMB entirely.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    Characterizer characterizer(mi100());

    Table table("Sec. 7 — pre-training vs fine-tuning vs inference "
                "(BERT-Large)");
    table.setHeader({"Workload", "Iter time", "Transformer", "Optimizer",
                     "Output", "GEMM share", "Kernels"});

    auto addRow = [&](const char *label,
                      const CharacterizationResult &result) {
        table.addRow({label, formatSeconds(result.totalSeconds),
                      formatPercent(result.scopeShare("Transformer")),
                      formatPercent(result.scopeShare("Optimizer")),
                      formatPercent(result.scopeShare("Output")),
                      formatPercent(result.gemmShare()),
                      std::to_string(result.kernelCount)});
    };

    addRow("Pre-train Ph1-B32",
           characterizer.run(withPhase1(bertLarge(), 32)));
    addRow("Fine-tune SQuAD (n=384, B=8, Adam)",
           characterizer.run(withSquadFineTune(bertLarge(), 8)));
    addRow("Fine-tune GLUE (n=128, B=16, Adam)",
           characterizer.run(withClassificationFineTune(bertLarge(), 16)));
    {
        const BertConfig config = withPhase1(bertLarge(), 1);
        BertTraceBuilder builder(config);
        addRow("Inference (B=1, n=128)",
               characterizer.runTrace(config, builder.buildInference()));
    }
    {
        BertConfig config = withPhase1(bertLarge(), 8);
        config.precision = Precision::Mixed;
        BertTraceBuilder builder(config);
        addRow("Inference (B=8, FP16)",
               characterizer.runTrace(config, builder.buildInference()));
    }

    std::printf("%s\n", table.render().c_str());

    // Inference batch sweep: the latency/throughput curve (even B=1
    // runs matrix-matrix kernels — Takeaway 5 — but small batches
    // underfill the device).
    Table sweep("Inference batch sweep (BERT-Large, n=128, FP16)");
    sweep.setHeader({"B", "Latency", "Tokens/s", "GEMM share"});
    for (std::int64_t batch : {1, 2, 4, 8, 16, 32}) {
        BertConfig config = withPhase1(bertLarge(), batch);
        config.precision = Precision::Mixed;
        BertTraceBuilder builder(config);
        const auto result =
            characterizer.runTrace(config, builder.buildInference());
        char tokens_s[32];
        std::snprintf(tokens_s, sizeof(tokens_s), "%.0f",
                      static_cast<double>(config.tokens()) /
                          result.totalSeconds);
        sweep.addRow({std::to_string(batch),
                      formatSeconds(result.totalSeconds), tokens_s,
                      formatPercent(result.gemmShare())});
    }
    std::printf("%s\n", sweep.render().c_str());
    std::printf("Paper (Sec. 7): fine-tuning keeps the pre-training "
                "breakdown with a simpler, negligible output layer; "
                "inference keeps the transformer-layer breakdown but "
                "has no backprop or LAMB.\n");
    return 0;
}
