/**
 * @file
 * Ablation (Sec. 7): extrapolating the breakdown to devices with
 * different compute-to-bandwidth ratios. The paper argues its
 * takeaways transfer via this ratio and that memory-boundedness will
 * "hold or be amplified" as compute scales faster than memory — this
 * binary sweeps the ratio and shows exactly that.
 */

#include <cstdio>

#include "core/bertprof.h"

using namespace bertprof;

int
main()
{
    const BertConfig config = withPhase1(bertLarge(), 32);

    struct Device {
        const char *label;
        DeviceSpec spec;
    };
    std::vector<Device> devices;
    devices.push_back({"MI100-like (baseline)", mi100()});
    devices.push_back({"A100-like", a100Like()});
    devices.push_back({"MI250-GCD-like", mi250Like()});
    devices.push_back({"half bandwidth", mi100HalfBandwidth()});
    devices.push_back({"2x compute", futureDoubleCompute()});
    {
        DeviceSpec both = futureDoubleCompute();
        both.name = "2x compute + 2x bandwidth";
        both.memBandwidth *= 2.0;
        devices.push_back({"2x compute + 2x bandwidth", both});
    }
    {
        DeviceSpec future = futureDoubleCompute();
        future.matrixFlopsFp32 *= 2.0;
        future.matrixFlopsFp16 *= 2.0;
        future.vectorFlopsFp32 *= 2.0;
        future.vectorFlopsFp16 *= 2.0;
        future.name = "4x compute";
        devices.push_back({"4x compute, same memory", future});
    }

    Table table("Device compute/bandwidth ratio sweep (Ph1-B32-FP32)");
    table.setHeader({"Device", "Ridge (FLOP/B)", "Iter time",
                     "GEMM share", "Non-GEMM share", "LAMB share"});
    for (const auto &[label, spec] : devices) {
        Characterizer characterizer(spec);
        const auto result = characterizer.run(config);
        char ridge[32];
        std::snprintf(ridge, sizeof(ridge), "%.0f",
                      ridgePoint(spec, OpKind::Gemm, DType::F32));
        table.addRow({label, ridge,
                      formatSeconds(result.totalSeconds),
                      formatPercent(result.gemmShare()),
                      formatPercent(1.0 - result.gemmShare()),
                      formatPercent(result.scopeShare("Optimizer"))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper (Sec. 7): proportions extrapolate by the "
                "compute/bandwidth ratio; memory-bound shares (non-GEMM "
                "and LAMB) hold or grow as compute scales faster than "
                "memory.\n");
    return 0;
}
